"""Figure registry: every table and figure of the paper, by id.

Each entry maps an experiment id (see DESIGN.md §5) to a function
``(EcosystemResult) -> rows`` where rows are printable dictionaries.
The benchmark harness times these functions and prints their rows; the
CLI exposes them via ``repro figure <id>``.
"""

from __future__ import annotations

from functools import lru_cache, partial
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro import obs
from repro.parallel import parallel_map
from repro.constants import (
    HTTP_ADAPTIVE_PROTOCOLS,
    Platform,
    Protocol,
    TOP_CDN_NAMES,
)
from repro.core import buckets as buckets_mod
from repro.core import complexity as complexity_mod
from repro.core import counts as counts_mod
from repro.core import durations as durations_mod
from repro.core import prevalence as prevalence_mod
from repro.core import protocol_share as share_mod
from repro.core import storage as storage_mod
from repro.core import summary as summary_mod
from repro.core import syndication as syndication_mod
from repro.core import trends as trends_mod
from repro.core.dimensions import (
    CdnDimension,
    FamilyDimension,
    PlatformDimension,
    ProtocolDimension,
)
from repro.entities.device import default_registry
from repro.errors import AnalysisError
from repro.packaging.manifest.detect import detect_protocol, sample_manifest_url
from repro.synthesis.catalogues import case_video_id
from repro.synthesis.calibration import EcosystemConfig
from repro.synthesis.generator import EcosystemGenerator, EcosystemResult

Rows = List[Dict[str, object]]
FigureFn = Callable[[EcosystemResult], Rows]

_REGISTRY: Dict[str, FigureFn] = {}
_DESCRIPTIONS: Dict[str, str] = {}


def figure(figure_id: str, description: str) -> Callable[[FigureFn], FigureFn]:
    """Register a figure-regenerating function under an id."""

    def decorator(fn: FigureFn) -> FigureFn:
        if figure_id in _REGISTRY:
            raise ValueError(f"duplicate figure id {figure_id!r}")
        _REGISTRY[figure_id] = fn
        _DESCRIPTIONS[figure_id] = description
        return fn

    return decorator


def figure_ids() -> List[str]:
    return sorted(_REGISTRY)


def describe(figure_id: str) -> str:
    return _DESCRIPTIONS[figure_id]


def run_figure(figure_id: str, result: EcosystemResult) -> Rows:
    try:
        fn = _REGISTRY[figure_id]
    except KeyError:
        raise AnalysisError(
            f"unknown figure {figure_id!r}; known: {', '.join(figure_ids())}"
        ) from None
    with obs.span("figure.run", figure=figure_id) as sp:
        obs.counter("figure.runs", figure=figure_id).inc()
        rows = fn(result)
        sp.set(rows=len(rows))
    return rows


@lru_cache(maxsize=1)
def _result_for(config: EcosystemConfig) -> EcosystemResult:
    """Per-process build memo: a pure function of the (frozen) config.

    The suite runner warms this in the parent before any pool exists,
    so under ``fork`` every worker inherits the finished build and a
    figure task costs only the figure itself (the same sanctioned
    ``lru_cache``-over-pure-builder pattern as synthesis's
    ``_plan_for``).
    """
    return EcosystemGenerator(config).generate()


def _figure_task(config: EcosystemConfig, figure_id: str) -> Rows:
    """Worker entry point: one figure's rows off the shared build."""
    return run_figure(figure_id, _result_for(config))


def run_suite(
    config: EcosystemConfig,
    ids: Optional[Sequence[str]] = None,
    jobs: int = 1,
) -> Dict[str, Rows]:
    """Regenerate a set of figures (default: all) against one build.

    ``jobs > 1`` fans one task per figure onto a process pool; because
    every task is a pure function of ``(config, figure_id)`` the rows
    are byte-identical to the serial run, and per-worker obs captures
    merge back so ``figure.runs`` totals match too.  Returns
    ``{figure_id: rows}`` in the requested order.
    """
    targets = list(ids) if ids is not None else figure_ids()
    unknown = sorted(set(targets) - set(_REGISTRY))
    if unknown:
        raise AnalysisError(
            f"unknown figures {unknown}; known: {', '.join(figure_ids())}"
        )
    with obs.span("figures.suite", figures=len(targets), jobs=jobs):
        # Parent builds (or rebuilds) so its spans/counters are live
        # in this process; forked workers inherit the warm memo.
        _result_for.cache_clear()
        _result_for(config)
        rows = parallel_map(
            partial(_figure_task, config),
            targets,
            jobs=jobs,
            label="figures.map",
        )
    return dict(zip(targets, rows))


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


@figure("T1", "Table 1: manifest extension to protocol mapping")
def table1(result: EcosystemResult) -> Rows:
    rows: Rows = []
    for protocol in HTTP_ADAPTIVE_PROTOCOLS + (Protocol.RTMP,):
        url = sample_manifest_url(protocol, "Z53TiGRzq", "cdn-a.example.net")
        rows.append(
            {
                "protocol": protocol.display_name,
                "sample_url": url,
                "detected": detect_protocol(url).display_name,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# §4.1 Packaging (Figs 2-4)
# ---------------------------------------------------------------------------


@figure("F2a", "Fig 2a: % publishers per streaming protocol over time")
def fig2a(result: EcosystemResult) -> Rows:
    series = prevalence_mod.publisher_support_series(
        result.dataset, ProtocolDimension(http_only=False)
    )
    return prevalence_mod.series_rows(
        series, list(HTTP_ADAPTIVE_PROTOCOLS) + [Protocol.RTMP]
    )


@figure("F2b", "Fig 2b: % view-hours per streaming protocol over time")
def fig2b(result: EcosystemResult) -> Rows:
    series = prevalence_mod.view_hour_share_series(
        result.dataset, ProtocolDimension(http_only=False)
    )
    return prevalence_mod.series_rows(
        series, list(HTTP_ADAPTIVE_PROTOCOLS) + [Protocol.RTMP]
    )


@figure("F2c", "Fig 2c: % view-hours per protocol, excluding DASH drivers")
def fig2c(result: EcosystemResult) -> Rows:
    series = prevalence_mod.view_hour_share_series(
        result.dataset,
        ProtocolDimension(http_only=False),
        exclude_publishers=result.dash_driver_ids,
    )
    return prevalence_mod.series_rows(series, list(HTTP_ADAPTIVE_PROTOCOLS))


@figure("F3a", "Fig 3a: publishers/view-hours by number of protocols")
def fig3a(result: EcosystemResult) -> Rows:
    rows = counts_mod.count_distribution(
        result.dataset.latest(), ProtocolDimension()
    )
    return [
        {
            "protocols": r.count,
            "percent_publishers": r.percent_publishers,
            "percent_view_hours": r.percent_view_hours,
        }
        for r in rows
    ]


@figure("F3b", "Fig 3b: number of protocols, bucketed by view-hours")
def fig3b(result: EcosystemResult) -> Rows:
    buckets = buckets_mod.bucketed_counts(
        result.dataset.latest(), ProtocolDimension()
    )
    return buckets_mod.bucket_table(buckets)


@figure("F3c", "Fig 3c: average number of protocols over time")
def fig3c(result: EcosystemResult) -> Rows:
    points = trends_mod.count_trend(result.dataset, ProtocolDimension())
    return [
        {
            "snapshot": p.snapshot.isoformat(),
            "average": p.average,
            "weighted_average": p.weighted_average,
        }
        for p in points
    ]


@figure("F4", "Fig 4: CDF of per-publisher DASH/HLS view-hour share")
def fig4(result: EcosystemResult) -> Rows:
    latest = result.dataset.latest()
    rows: Rows = []
    for protocol in (Protocol.DASH, Protocol.HLS):
        cdf = share_mod.share_cdf(latest, protocol)
        xs, fs = cdf.as_series(n_points=21)
        for x, f in zip(xs, fs):
            rows.append(
                {
                    "protocol": protocol.display_name,
                    "share_pct": float(x),
                    "cdf": float(f),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# §4.2 Device playback (Figs 5-10)
# ---------------------------------------------------------------------------


@figure("F5", "Fig 5: the platform/device taxonomy")
def fig5(result: EcosystemResult) -> Rows:
    registry = default_registry()
    rows: Rows = []
    for platform, families in sorted(
        registry.taxonomy().items(), key=lambda item: item[0].value
    ):
        for family, models in sorted(families.items()):
            rows.append(
                {
                    "platform": platform.display_name,
                    "family": family,
                    "models": ", ".join(sorted(models)),
                }
            )
    return rows


@figure("F6a", "Fig 6a: % view-hours per platform over time")
def fig6a(result: EcosystemResult) -> Rows:
    series = prevalence_mod.view_hour_share_series(
        result.dataset, PlatformDimension()
    )
    return prevalence_mod.series_rows(series, list(Platform))


@figure("F6b", "Fig 6b: % view-hours per platform, excluding top 3")
def fig6b(result: EcosystemResult) -> Rows:
    series = prevalence_mod.view_hour_share_series(
        result.dataset,
        PlatformDimension(),
        exclude_publishers=result.top3_ids,
    )
    return prevalence_mod.series_rows(series, list(Platform))


@figure("F6c", "Fig 6c: % views per platform over time")
def fig6c(result: EcosystemResult) -> Rows:
    series = prevalence_mod.view_hour_share_series(
        result.dataset, PlatformDimension(), by_views=True
    )
    return prevalence_mod.series_rows(series, list(Platform))


@figure("F7", "Fig 7: % publishers supporting each platform over time")
def fig7(result: EcosystemResult) -> Rows:
    series = prevalence_mod.publisher_support_series(
        result.dataset, PlatformDimension()
    )
    return prevalence_mod.series_rows(series, list(Platform))


@figure("F8", "Fig 8: CDF of view duration per platform")
def fig8(result: EcosystemResult) -> Rows:
    cdfs = durations_mod.duration_cdfs(result.dataset.latest())
    rows: Rows = []
    for platform, cdf in sorted(cdfs.items(), key=lambda kv: kv[0].value):
        for threshold in (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0):
            rows.append(
                {
                    "platform": platform.display_name,
                    "hours": threshold,
                    "cdf": cdf(threshold),
                }
            )
    return rows


@figure("F9a", "Fig 9a: publishers/view-hours by number of platforms")
def fig9a(result: EcosystemResult) -> Rows:
    rows = counts_mod.count_distribution(
        result.dataset.latest(), PlatformDimension()
    )
    return [
        {
            "platforms": r.count,
            "percent_publishers": r.percent_publishers,
            "percent_view_hours": r.percent_view_hours,
        }
        for r in rows
    ]


@figure("F9b", "Fig 9b: number of platforms, bucketed by view-hours")
def fig9b(result: EcosystemResult) -> Rows:
    buckets = buckets_mod.bucketed_counts(
        result.dataset.latest(), PlatformDimension()
    )
    return buckets_mod.bucket_table(buckets)


@figure("F9c", "Fig 9c: average number of platforms over time")
def fig9c(result: EcosystemResult) -> Rows:
    points = trends_mod.count_trend(result.dataset, PlatformDimension())
    return [
        {
            "snapshot": p.snapshot.isoformat(),
            "average": p.average,
            "weighted_average": p.weighted_average,
        }
        for p in points
    ]


def _family_rows(result: EcosystemResult, platform: Platform) -> Rows:
    series = prevalence_mod.view_hour_share_series(
        result.dataset, FamilyDimension(platform)
    )
    registry = default_registry()
    return prevalence_mod.series_rows(series, registry.families(platform))


@figure("F10a", "Fig 10a: % browser view-hours per player technology")
def fig10a(result: EcosystemResult) -> Rows:
    return _family_rows(result, Platform.BROWSER)


@figure("F10b", "Fig 10b: % mobile view-hours per OS")
def fig10b(result: EcosystemResult) -> Rows:
    return _family_rows(result, Platform.MOBILE)


@figure("F10c", "Fig 10c: % set-top view-hours per device family")
def fig10c(result: EcosystemResult) -> Rows:
    return _family_rows(result, Platform.SET_TOP)


# ---------------------------------------------------------------------------
# §4.3 Content distribution (Figs 11-12)
# ---------------------------------------------------------------------------


@figure("F11a", "Fig 11a: % publishers per top-5 CDN over time")
def fig11a(result: EcosystemResult) -> Rows:
    series = prevalence_mod.publisher_support_series(
        result.dataset, CdnDimension()
    )
    return prevalence_mod.series_rows(series, list(TOP_CDN_NAMES))


@figure("F11b", "Fig 11b: % view-hours per top-5 CDN over time")
def fig11b(result: EcosystemResult) -> Rows:
    series = prevalence_mod.view_hour_share_series(
        result.dataset, CdnDimension()
    )
    return prevalence_mod.series_rows(series, list(TOP_CDN_NAMES))


@figure("F12a", "Fig 12a: publishers/view-hours by number of CDNs")
def fig12a(result: EcosystemResult) -> Rows:
    rows = counts_mod.count_distribution(
        result.dataset.latest(), CdnDimension()
    )
    return [
        {
            "cdns": r.count,
            "percent_publishers": r.percent_publishers,
            "percent_view_hours": r.percent_view_hours,
        }
        for r in rows
    ]


@figure("F12b", "Fig 12b: number of CDNs, bucketed by view-hours")
def fig12b(result: EcosystemResult) -> Rows:
    buckets = buckets_mod.bucketed_counts(
        result.dataset.latest(), CdnDimension()
    )
    return buckets_mod.bucket_table(buckets)


@figure("F12c", "Fig 12c: average number of CDNs over time")
def fig12c(result: EcosystemResult) -> Rows:
    points = trends_mod.count_trend(result.dataset, CdnDimension())
    return [
        {
            "snapshot": p.snapshot.isoformat(),
            "average": p.average,
            "weighted_average": p.weighted_average,
        }
        for p in points
    ]


# ---------------------------------------------------------------------------
# §5 Complexity (Fig 13)
# ---------------------------------------------------------------------------


@figure("F13", "Fig 13: complexity metrics vs view-hours (slopes)")
def fig13(result: EcosystemResult) -> Rows:
    metrics = complexity_mod.publisher_complexity(
        result.dataset.latest(), result.catalogue_sizes
    )
    fits = complexity_mod.fit_complexity(metrics)
    return [
        {
            "metric": "management-plane combinations",
            "per_decade_factor": fits.combinations.per_decade_factor,
            "paper_factor": 1.72,
            "r_squared": fits.combinations.r_squared,
            "p_value": fits.combinations.p_value,
        },
        {
            "metric": "protocol-titles",
            "per_decade_factor": fits.protocol_titles.per_decade_factor,
            "paper_factor": 3.8,
            "r_squared": fits.protocol_titles.r_squared,
            "p_value": fits.protocol_titles.p_value,
        },
        {
            "metric": "unique SDKs",
            "per_decade_factor": fits.unique_sdks.per_decade_factor,
            "paper_factor": 1.8,
            "r_squared": fits.unique_sdks.r_squared,
            "p_value": fits.unique_sdks.p_value,
        },
        {
            "metric": "max unique SDKs",
            "per_decade_factor": float(
                complexity_mod.max_unique_sdks(metrics)
            ),
            "paper_factor": 85.0,
            "r_squared": float("nan"),
            "p_value": float("nan"),
        },
    ]


# ---------------------------------------------------------------------------
# §6 Syndication (Figs 14-18)
# ---------------------------------------------------------------------------


@figure("F14", "Fig 14: CDF across owners of % syndicators used")
def fig14(result: EcosystemResult) -> Rows:
    cdf = syndication_mod.syndication_cdf(result.dataset)
    xs, fs = cdf.as_series(n_points=21)
    rows: Rows = [
        {"pct_syndicators": float(x), "cdf": float(f)}
        for x, f in zip(xs, fs)
    ]
    summary = syndication_mod.prevalence_summary(result.dataset)
    rows.append(
        {
            "pct_syndicators": -1.0,
            "cdf": summary["pct_owners_with_syndicator"] / 100.0,
        }
    )
    return rows


def _qoe_rows(result: EcosystemResult, metric: str) -> Rows:
    if result.case_study is None:
        raise AnalysisError("dataset was generated without a case study")
    study = result.case_study
    rows: Rows = []
    for isp, cdn_name in (("X", "A"), ("Y", "B")):
        comparison = syndication_mod.qoe_comparison(
            result.dataset,
            study.owner_id,
            study.publisher_id(study.qoe_syndicator_label),
            case_video_id(),
            isp,
            cdn_name,
        )
        if metric == "bitrate":
            rows.append(
                {
                    "isp": isp,
                    "cdn": cdn_name,
                    "owner_median_kbps": comparison.owner_bitrate.median(),
                    "syndicator_median_kbps": (
                        comparison.syndicator_bitrate.median()
                    ),
                    "median_gain": comparison.median_bitrate_gain(),
                    "paper_gain": 2.5,
                }
            )
        else:
            rows.append(
                {
                    "isp": isp,
                    "cdn": cdn_name,
                    "owner_p90_rebuffer": comparison.owner_rebuffer.quantile(
                        0.9
                    ),
                    "syndicator_p90_rebuffer": (
                        comparison.syndicator_rebuffer.quantile(0.9)
                    ),
                    "p90_reduction": comparison.p90_rebuffer_reduction(),
                    "paper_reduction": 0.40,
                }
            )
    return rows


@figure("F15", "Fig 15: owner vs syndicator average bitrate")
def fig15(result: EcosystemResult) -> Rows:
    return _qoe_rows(result, "bitrate")


@figure("F16", "Fig 16: owner vs syndicator rebuffering")
def fig16(result: EcosystemResult) -> Rows:
    return _qoe_rows(result, "rebuffer")


@figure("F17", "Fig 17: bitrate ladders of owner and syndicators")
def fig17(result: EcosystemResult) -> Rows:
    if result.case_study is None:
        raise AnalysisError("dataset was generated without a case study")
    study = result.case_study
    ladders = syndication_mod.ladders_for_video(
        result.dataset, case_video_id()
    )
    id_to_label = {pid: label for label, pid in study.labels.items()}
    rows: Rows = []
    for publisher_id, ladder in sorted(
        ladders.items(), key=lambda kv: id_to_label.get(kv[0], "~")
    ):
        rows.append(
            {
                "label": id_to_label.get(publisher_id, publisher_id),
                "rungs": len(ladder),
                "min_kbps": min(ladder),
                "max_kbps": max(ladder),
                "bitrates": " ".join(f"{b:.0f}" for b in ladder),
            }
        )
    return rows


@figure("F18", "Fig 18: CDN origin storage savings under dedup models")
def fig18(result: EcosystemResult) -> Rows:
    if result.case_study is None:
        raise AnalysisError("dataset was generated without a case study")
    rows: Rows = []
    for savings in storage_mod.figure18(result.case_study):
        rows.append(
            {
                "cdn": savings.cdn_name,
                "total_tb": savings.total_tb,
                "saved_tb_5pct": savings.saved_tb_5pct,
                "saved_pct_5pct": savings.saved_pct_5pct,
                "saved_tb_10pct": savings.saved_tb_10pct,
                "saved_pct_10pct": savings.saved_pct_10pct,
                "saved_tb_integrated": savings.saved_tb_integrated,
                "saved_pct_integrated": savings.saved_pct_integrated,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Prose statistics (§4.1 RTMP, §4.3 segregation, §4.4 summary)
# ---------------------------------------------------------------------------


@figure("S41R", "§4.1: RTMP view-hour share, first vs latest snapshot")
def s41_rtmp(result: EcosystemResult) -> Rows:
    shares = summary_mod.rtmp_share(result.dataset)
    return [
        {"snapshot": "first", "rtmp_pct": shares["first"], "paper": 1.6},
        {"snapshot": "latest", "rtmp_pct": shares["latest"], "paper": 0.1},
    ]


@figure("S43L", "§4.3: live/VoD CDN segregation among multi-CDN publishers")
def s43_segregation(result: EcosystemResult) -> Rows:
    stats = summary_mod.live_vod_cdn_segregation(result.dataset.latest())
    return [
        {
            "stat": "vod-only CDN",
            "measured_pct": stats.pct_with_vod_only_cdn,
            "paper_pct": 30.0,
        },
        {
            "stat": "live-only CDN",
            "measured_pct": stats.pct_with_live_only_cdn,
            "paper_pct": 19.0,
        },
    ]


@figure("S44", "§4.4: summary statistics across all dimensions")
def s44_summary(result: EcosystemResult) -> Rows:
    summaries = summary_mod.headline_summary(result.dataset)
    paper = {"protocols": 2.2, "platforms": 4.5, "cdns": 4.5}
    rows: Rows = []
    for name, summary in summaries.items():
        rows.append(
            {
                "dimension": name,
                "avg_count": summary.average_count,
                "weighted_avg_count": summary.weighted_average_count,
                "paper_weighted_avg": paper[name],
                "pct_vh_multi_instance": summary.pct_view_hours_multi,
            }
        )
    rows.append(
        {
            "dimension": "top-5 CDN view-hour share",
            "avg_count": summary_mod.top_cdn_concentration(
                result.dataset.latest()
            ),
            "weighted_avg_count": float("nan"),
            "paper_weighted_avg": 93.0,
            "pct_vh_multi_instance": float("nan"),
        }
    )
    return rows


# ---------------------------------------------------------------------------
# Extensions (the paper's stated future work; see DESIGN.md §5b)
# ---------------------------------------------------------------------------


@figure("X1", "Extension: evenness-aware diversity metrics")
def x1_diversity(result: EcosystemResult) -> Rows:
    from repro.core.diversity import (
        fit_diversity,
        mean_evenness,
        publisher_diversity,
    )

    profiles = publisher_diversity(result.dataset.latest())
    fits = fit_diversity(profiles)
    return [
        {
            "metric": "count-surface factor/decade",
            "value": fits.count_surface.per_decade_factor,
        },
        {
            "metric": "evenness-aware factor/decade",
            "value": fits.surface_index.per_decade_factor,
        },
        {"metric": "mean evenness ratio", "value": mean_evenness(profiles)},
        {
            "metric": "VH-weighted evenness ratio",
            "value": mean_evenness(profiles, weight_by_view_hours=True),
        },
    ]


@figure("X2", "Extension: syndicator QoE under integrated syndication")
def x2_integration_qoe(result: EcosystemResult) -> Rows:
    from repro.core.integrated import project_all_syndicators

    if result.case_study is None:
        raise AnalysisError("dataset was generated without a case study")
    projections = project_all_syndicators(result.case_study, sessions=60)
    rows: Rows = []
    for label in result.case_study.syndicator_labels:
        projection = projections[label]
        rows.append(
            {
                "syndicator": label,
                "before_kbps": projection.before_median_kbps,
                "after_kbps": projection.after_median_kbps,
                "bitrate_gain": projection.bitrate_gain,
                "rebuffer_reduction": projection.rebuffer_reduction,
            }
        )
    return rows


@figure("X3", "Extension: CDN accounting under API integration")
def x3_accounting(result: EcosystemResult) -> Rows:
    from repro.core.integrated import accounting_report
    from repro.synthesis.catalogues import case_video_id

    if result.case_study is None:
        raise AnalysisError("dataset was generated without a case study")
    id_to_label = {
        pid: label for label, pid in result.case_study.labels.items()
    }
    report = accounting_report(
        result.dataset, "A", video_ids=frozenset({case_video_id()})
    )
    total = sum(e.delivered_gigabytes for e in report.values())
    rows: Rows = []
    for publisher_id, entry in sorted(
        report.items(), key=lambda kv: -kv[1].delivered_gigabytes
    ):
        rows.append(
            {
                "publisher": id_to_label.get(publisher_id, publisher_id),
                "views": entry.views,
                "view_hours": entry.view_hours,
                "delivered_gb": entry.delivered_gigabytes,
                "share_pct": 100.0 * entry.delivered_gigabytes / total,
            }
        )
    return rows


@figure("X4", "Extension: dataset quality-assurance audit")
def x4_quality(result: EcosystemResult) -> Rows:
    from repro.telemetry.quality import audit

    report = audit(result.dataset)
    return [
        {"check": "records", "value": float(report.records)},
        {"check": "publishers", "value": float(report.publishers)},
        {
            "check": "classifiable URLs",
            "value": report.classifiable_url_fraction,
        },
        {"check": "known devices", "value": report.known_device_fraction},
        {
            "check": "app views with SDK",
            "value": report.app_views_with_sdk_fraction,
        },
        {
            "check": "publisher-snapshot coverage",
            "value": report.publisher_snapshot_coverage,
        },
        {"check": "status ok", "value": 1.0 if report.ok else 0.0},
    ]
