"""Differential oracles: independent code paths must agree.

Each oracle executes the scenario along two (or more) implementations
that are supposed to be observationally equivalent and asserts they
are.  These are the contracts the columnar backend (PR 4), the
parallel generator (PR 4), the robust ingest path (PR 1), and the
manifest writers/parsers (seed) each promised individually — here they
are enforced together, per scenario, forever.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import List

from repro.constants import HTTP_ADAPTIVE_PROTOCOLS, ContentType, Protocol
from repro.entities.ladder import BitrateLadder
from repro.entities.video import Video
from repro.packaging.manifest import manifest_writer_for, parser_for
from repro.packaging.manifest.detect import (
    detect_protocol,
    sample_manifest_url,
)
from repro.telemetry.dataset import Dataset
from repro.telemetry.ingest import (
    ErrorPolicy,
    IngestPipeline,
    events_from_records,
)
from repro.testkit.oracles import Check, Skip, oracle
from repro.testkit.scenario import ScenarioRun

#: Records replayed through the clean strict-vs-repair comparison.
_CLEAN_REPLAY_LIMIT = 200

#: Distinct dataset ladders exercised per protocol round-trip.
_LADDER_SAMPLE = 3


@oracle(
    "differential",
    "row-vs-columnar",
    "every figure agrees between vectorized and row-at-a-time dispatch",
)
def row_vs_columnar(run: ScenarioRun, check: Check) -> str:
    """The PR 4 parity contract, over the scenario's whole figure set."""
    base, row = run.result.dataset, run.row_result().dataset
    check.that(base.columnar, "base dataset must be columnar-backed")
    check.that(not row.columnar, "row variant must not be columnar-backed")
    check.equal(len(row), len(base), "record count")
    check.equal(row.snapshots(), base.snapshots(), "snapshot list")
    check.equal(row.publishers(), base.publishers(), "publisher set")
    check.close(
        row.total_view_hours(), base.total_view_hours(), "total view-hours"
    )
    check.dicts_close(
        row.publisher_view_hours(),
        base.publisher_view_hours(),
        "publisher view-hours",
    )
    for figure_id in run.spec.figures():
        check.rows_equal(
            run.figure_rows(figure_id, "row"),
            run.figure_rows(figure_id),
            f"figure {figure_id}",
            rel=1e-9,
        )
    return (
        f"{len(run.spec.figures())} figures + 5 aggregations agree "
        "across dispatch paths"
    )


@oracle(
    "differential",
    "serial-vs-parallel",
    "jobs=N synthesis is byte-identical to the serial build",
)
def serial_vs_parallel(run: ScenarioRun, check: Check) -> str:
    """The PR 4 determinism contract: same bytes, same figure rows."""
    check.that(
        run.dataset_bytes("parallel") == run.dataset_bytes("base"),
        f"jobs={run.spec.jobs} build serializes to different bytes than "
        "the serial build",
    )
    for figure_id in run.spec.figures():
        check.rows_equal(
            run.figure_rows(figure_id, "parallel"),
            run.figure_rows(figure_id),
            f"figure {figure_id}",
        )
    return (
        f"serial and jobs={run.spec.jobs} builds are byte-identical "
        f"({len(run.dataset_bytes('base'))} bytes, "
        f"{len(run.spec.figures())} figures)"
    )


@oracle(
    "differential",
    "strict-vs-repair-clean",
    "on clean input every error policy folds the same records",
)
def strict_vs_repair_clean(run: ScenarioRun, check: Check) -> str:
    """A lenient policy must be invisible when nothing is wrong."""
    records = run.clean_records(_CLEAN_REPLAY_LIMIT)
    check.that(len(records) > 0, "scenario produced no replayable records")
    folded = {}
    reports = {}
    for policy in ErrorPolicy:
        events = events_from_records(records)
        report = IngestPipeline(policy).run(events)
        folded[policy] = report.records
        reports[policy] = report
    strict = folded[ErrorPolicy.STRICT]
    check.that(len(strict) > 0, "strict ingest folded no records")
    for policy in (ErrorPolicy.QUARANTINE, ErrorPolicy.REPAIR):
        check.equal(
            len(folded[policy]), len(strict), f"{policy.value} record count"
        )
        check.that(
            folded[policy] == strict,
            f"{policy.value} folded different records than strict on "
            "clean input",
        )
        report = reports[policy]
        check.equal(report.quarantined, 0, f"{policy.value} quarantined")
        check.equal(report.repaired, 0, f"{policy.value} repaired")
        check.equal(report.deduped, 0, f"{policy.value} deduped")
        check.equal(report.reaped, 0, f"{policy.value} reaped")
    return (
        f"{len(strict)} records from {len(records)} clean sessions fold "
        "identically under strict/quarantine/repair"
    )


@oracle(
    "differential",
    "save-load-roundtrip",
    "save -> load(limit=None) is the identity, gzipped or not",
)
def save_load_roundtrip(run: ScenarioRun, check: Check) -> str:
    dataset = run.result.dataset
    with tempfile.TemporaryDirectory(prefix="repro-testkit-") as tmp:
        for suffix in (".jsonl", ".jsonl.gz"):
            path = Path(tmp) / f"dataset{suffix}"
            dataset.save(path)
            loaded = Dataset.load(path, limit=None)
            check.equal(
                len(loaded), len(dataset), f"{suffix} loaded record count"
            )
            check.that(
                loaded.records == dataset.records,
                f"{suffix} round-trip changed at least one record",
            )
        # A limited load must be an exact prefix, not a resampling.
        half = max(1, len(dataset) // 2)
        partial = Dataset.load(Path(tmp) / "dataset.jsonl", limit=half)
        check.that(
            partial.records == dataset.records[:half],
            f"load(limit={half}) is not the first {half} records",
        )
    return (
        f"{len(dataset)} records round-trip bit-exact through .jsonl "
        "and .jsonl.gz, and limited loads are exact prefixes"
    )


def _sample_ladders(run: ScenarioRun) -> List[BitrateLadder]:
    """First few distinct ladders observed in the scenario's dataset."""
    seen = []
    for record in run.result.dataset.records:
        if record.bitrate_ladder_kbps not in seen:
            seen.append(record.bitrate_ladder_kbps)
        if len(seen) >= _LADDER_SAMPLE:
            break
    return [BitrateLadder.from_bitrates(b) for b in seen]


@oracle(
    "differential",
    "manifest-roundtrip",
    "emit -> detect -> parse agree for all five protocols",
)
def manifest_roundtrip(run: ScenarioRun, check: Check) -> str:
    """Table 1 as a closed loop, using ladders the scenario generated."""
    ladders = _sample_ladders(run)
    check.that(len(ladders) > 0, "scenario dataset carries no ladders")
    video = Video(
        video_id="vid_testkit_rt",
        duration_seconds=600.0,
        content_type=ContentType.VOD,
    )
    base_url = "http://cdn-a.example.net"
    for protocol in HTTP_ADAPTIVE_PROTOCOLS:
        writer = manifest_writer_for(protocol)
        parser = parser_for(protocol)
        check.equal(
            detect_protocol(writer.manifest_url(video, base_url)),
            protocol,
            f"{protocol.display_name} manifest URL detection",
        )
        for ladder in ladders:
            info = parser.parse(writer.render(video, ladder, base_url))
            check.equal(
                info.protocol, protocol, f"{protocol.display_name} parse"
            )
            check.equal(
                info.video_id,
                video.video_id,
                f"{protocol.display_name} video id",
            )
            check.that(
                len(info.bitrates_kbps) == len(ladder),
                f"{protocol.display_name} lost renditions: "
                f"{len(info.bitrates_kbps)} != {len(ladder)}",
            )
            for parsed, original in zip(
                info.bitrates_kbps, ladder.bitrates_kbps
            ):
                # Writers may legally round to whole kbps (HDS does),
                # so allow up to 1 kbps of quantization.
                check.close(
                    parsed,
                    original,
                    f"{protocol.display_name} bitrate",
                    rel=1e-6,
                    abs_tol=1.0,
                )
    # The paper's two non-manifest protocols detect from URL shape.
    check.equal(
        detect_protocol(
            sample_manifest_url(Protocol.RTMP, video.video_id, "cdn-a")
        ),
        Protocol.RTMP,
        "RTMP scheme detection",
    )
    check.equal(
        detect_protocol(
            sample_manifest_url(Protocol.PROGRESSIVE, video.video_id, "cdn-a")
        ),
        Protocol.PROGRESSIVE,
        "progressive extension detection",
    )
    return (
        f"{len(HTTP_ADAPTIVE_PROTOCOLS)} adaptive protocols round-trip "
        f"{len(ladders)} dataset ladders; RTMP + progressive detect"
    )


@oracle(
    "differential",
    "fault-ingest-replay",
    "fault-injected ingestion is reproducible and fully accounted",
)
def fault_ingest_replay(run: ScenarioRun, check: Check) -> str:
    """The ingest stage under faults: deterministic, accounted, ordered.

    Two independent replays of the same corrupted stream must produce
    identical reports, every input event must be accounted exactly once
    (accepted + deduped + event-level dead letters), and repair must
    never quarantine more than quarantine does.
    """
    if run.spec.ingest is None:
        raise Skip(
            f"scenario {run.spec.name!r} declares no ingest stage"
        )
    events_a, injector_a = run.corrupted_events()
    events_b, injector_b = run.corrupted_events()
    check.equal(
        [(f.kind, f.index, f.session_id) for f in injector_b.log],
        [(f.kind, f.index, f.session_id) for f in injector_a.log],
        "fault injector audit log across replays",
    )
    check.that(
        len(injector_a.log) > 0,
        "fault injector applied no faults at "
        f"rate {run.spec.ingest.fault_rate}",
    )
    reports = {}
    for policy in (ErrorPolicy.QUARANTINE, ErrorPolicy.REPAIR):
        report_a = IngestPipeline(policy).run(events_a)
        report_b = IngestPipeline(policy).run(events_b)
        check.that(
            report_a.records == report_b.records,
            f"{policy.value} replay folded different records",
        )
        check.equal(
            report_b.reason_counts(),
            report_a.reason_counts(),
            f"{policy.value} replay reason counts",
        )
        check.equal(
            report_a.accepted
            + report_a.deduped
            + report_a.event_quarantined,
            report_a.total_events,
            f"{policy.value} event accounting",
        )
        reports[policy] = report_a
    check.that(
        reports[ErrorPolicy.REPAIR].quarantined
        <= reports[ErrorPolicy.QUARANTINE].quarantined,
        "repair quarantined more events than quarantine: "
        f"{reports[ErrorPolicy.REPAIR].quarantined} > "
        f"{reports[ErrorPolicy.QUARANTINE].quarantined}",
    )
    quarantine = reports[ErrorPolicy.QUARANTINE]
    return (
        f"{quarantine.total_events} corrupted events replay "
        f"deterministically ({len(injector_a.log)} faults, "
        f"{quarantine.quarantined} quarantined)"
    )


@oracle(
    "differential",
    "chaos-recovery",
    "chaos with recovery is observationally identical to no chaos",
)
def chaos_recovery(run: ScenarioRun, check: Check) -> str:
    """The chaos plane's core promise, as a differential oracle.

    Restricting the scenario's fault plan to its *recoverable* faults
    (duplicates and delayed session starts), ingesting the faulted
    stream, and rebuilding every figure must reproduce the fault-free
    run byte for byte — zero quarantines, zero record drift, zero
    figure-row drift.
    """
    if run.spec.chaos_plan is None:
        raise Skip(f"scenario {run.spec.name!r} declares no chaos plan")
    # Lazy import: repro.chaos is not in testkit's module-import graph.
    from repro.chaos.runner import ChaosRun

    chaos_run = ChaosRun(run.spec, scenario=run)
    recovery = chaos_run.recovery()
    check.that(
        recovery.injection.total_injected > 0,
        "the plan's recoverable projection injected nothing — this "
        "oracle would be vacuous",
    )
    check.equal(recovery.quarantined, 0, "quarantined under recovery")
    check.equal(
        len(recovery.recovered_records),
        len(recovery.clean_records),
        "recovered record count",
    )
    check.that(
        recovery.identical,
        "recovered ingest folded different records than the fault-free "
        "replay",
    )
    clean_rows = chaos_run.figure_rows_from(recovery.clean_records, "clean")
    recovered_rows = chaos_run.figure_rows_from(
        recovery.recovered_records, "recovered"
    )
    for figure_id in sorted(clean_rows):
        check.rows_equal(
            recovered_rows[figure_id],
            clean_rows[figure_id],
            f"figure {figure_id} under recovered chaos",
        )
    return (
        f"{recovery.injection.total_injected} recoverable faults left "
        f"{len(recovery.clean_records)} records and "
        f"{len(clean_rows)} figures byte-identical"
    )
