"""``repro.testkit`` — deterministic scenario harness with oracles.

The reproduction has four fast-moving layers (synthesis, ingest, the
columnar dataset, the analyses/figures) whose agreement used to be
checked only piecewise.  This package checks the *whole chain* at once:

* a **scenario** (:mod:`repro.testkit.scenario`) is a declarative spec
  that composes seeded synthesis -> optional fault-injected ingest ->
  :class:`~repro.telemetry.dataset.Dataset` -> every registered figure
  into one reproducible run artifact (:class:`ScenarioRun`);
* **differential oracles** (:mod:`repro.testkit.differential`) execute
  a scenario along independent code paths — row vs columnar dispatch,
  serial vs parallel synthesis, strict vs repair ingest on clean
  input, save/load and manifest round-trips — and assert equivalence;
* **metamorphic oracles** (:mod:`repro.testkit.metamorphic`) assert
  relations that must hold between a run and a transformed run:
  record-permutation invariance, publisher-subset monotonicity,
  view-hour scale invariance, and seed sensitivity;
* the **report** layer (:mod:`repro.testkit.report`) runs the full
  scenario x oracle matrix, wires counts into :mod:`repro.obs`, and
  renders a machine-readable JSON report (``repro testkit run --json``).

Every later scaling PR runs this matrix: if a refactor changes any
pipeline stage's observable behaviour, some oracle names the exact
inequality.
"""

from __future__ import annotations

from repro.errors import OracleFailure, TestkitError
from repro.testkit.oracles import (
    Check,
    Oracle,
    OracleOutcome,
    get_oracle,
    oracle,
    oracle_names,
    oracles_by_kind,
    run_oracle,
)
from repro.testkit.scenario import (
    IngestSpec,
    ScenarioRun,
    ScenarioSpec,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)
from repro.testkit.report import OracleReport, run_matrix

# Importing the oracle packs registers them with the registry.
from repro.testkit import differential as _differential  # noqa: F401
from repro.testkit import metamorphic as _metamorphic  # noqa: F401

# The chaos scenario zoo registers its scenarios, perturbations, and
# degradation contracts as import side effects.  It must come last (it
# imports back into repro.testkit.scenario) and must be skipped when
# repro.chaos is already mid-import higher in the stack — that package
# imports the zoo itself as its final statement, and importing it here
# would hit its partially initialized contracts module.
import sys as _sys

if "repro.chaos" not in _sys.modules:
    from repro.chaos import zoo as _zoo  # noqa: E402,F401

__all__ = [
    "Check",
    "IngestSpec",
    "Oracle",
    "OracleFailure",
    "OracleOutcome",
    "OracleReport",
    "ScenarioRun",
    "ScenarioSpec",
    "TestkitError",
    "get_oracle",
    "get_scenario",
    "oracle",
    "oracle_names",
    "oracles_by_kind",
    "register_scenario",
    "run_matrix",
    "run_oracle",
    "run_scenario",
    "scenario_names",
]
