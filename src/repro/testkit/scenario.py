"""Scenario spec DSL and the named scenario library.

A :class:`ScenarioSpec` declares one end-to-end exercise of the
pipeline: the synthesis knobs (seed, schedule thinning, population
size), an optional fault-injected ingest stage, the figure set to
regenerate, and the parallelism/alternate-seed parameters the
differential oracles need.  Everything an oracle might compare is
derived *lazily* from the spec through :class:`ScenarioRun` and cached,
so a matrix of oracles over one scenario pays for each expensive build
(serial, parallel, alternate-seed) exactly once.

Four scenarios ship by default:

``tiny``
    The smallest legal ecosystem — fastest full-chain smoke.
``paper-shaped``
    The tier-1 fixture shape (seed 2018, 6 snapshots, 110 publishers):
    what the golden figure rows are captured from.
``fault-heavy``
    A small build whose event replay runs through the
    :class:`~repro.telemetry.faults.FaultInjector` at a high corruption
    rate, exercising the quarantine/repair policies.
``syndication-heavy``
    A mid-size build with an enlarged §6 QoE study, weighting the
    syndication analyses (Figs 14-18, X2/X3).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro import figures, obs
from repro.errors import TestkitError
from repro.synthesis.calibration import EcosystemConfig
from repro.synthesis.generator import EcosystemGenerator, EcosystemResult
from repro.telemetry.dataset import Dataset
from repro.telemetry.faults import FaultInjector, FaultMix
from repro.telemetry.records import ViewRecord

Rows = List[Dict[str, object]]


@dataclass(frozen=True)
class IngestSpec:
    """The optional fault-injected ingest stage of a scenario.

    ``sessions`` view records are replayed as raw event streams, the
    injector corrupts them at ``fault_rate`` under ``fault_seed``, and
    the stream is ingested under both lenient policies so the run
    artifact carries a quarantine and a repair report to compare.
    """

    sessions: int = 200
    fault_rate: float = 0.2
    fault_seed: int = 7

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise TestkitError("ingest sessions must be >= 1")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise TestkitError("fault rate must be in [0, 1]")

    def mix(self) -> FaultMix:
        return FaultMix.uniform(self.fault_rate)


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, fully deterministic end-to-end scenario."""

    name: str
    description: str
    seed: int
    alt_seed: int
    snapshot_limit: int
    n_publishers: int
    records_scale: float = 1.0
    qoe_sessions: int = 160
    jobs: int = 2
    ingest: Optional[IngestSpec] = None
    #: Figure ids to regenerate; empty means every registered figure.
    figure_ids: Tuple[str, ...] = ()
    #: Optional :class:`repro.chaos.plan.FaultPlan` driving the chaos
    #: runner; ``None`` means the scenario declares no fault campaign.
    #: (Typed loosely to keep testkit importable without the chaos
    #: package in the import graph.)
    chaos_plan: Optional[object] = None
    #: Optional name of a registered perturbation; when set, the run
    #: offers a "perturbed" build variant for metamorphic contracts.
    perturb: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise TestkitError("scenario name must be non-empty, no spaces")
        if self.alt_seed == self.seed:
            raise TestkitError(
                "alt_seed must differ from seed (it drives the "
                "seed-sensitivity oracle)"
            )
        if self.jobs < 2:
            raise TestkitError(
                "jobs must be >= 2 (it drives the serial-vs-parallel "
                "oracle)"
            )
        unknown = set(self.figure_ids) - set(figures.figure_ids())
        if unknown:
            raise TestkitError(
                f"scenario names unknown figures: {sorted(unknown)}"
            )
        if self.chaos_plan is not None:
            from repro.chaos.plan import FaultPlan

            if not isinstance(self.chaos_plan, FaultPlan):
                raise TestkitError(
                    "chaos_plan must be a repro.chaos.plan.FaultPlan, "
                    f"got {type(self.chaos_plan).__name__}"
                )

    def config(self, seed: Optional[int] = None) -> EcosystemConfig:
        """The generator config for this scenario (or a reseeded one)."""
        return EcosystemConfig(
            seed=self.seed if seed is None else seed,
            snapshot_limit=self.snapshot_limit,
            n_publishers=self.n_publishers,
            records_scale=self.records_scale,
            qoe_sessions=self.qoe_sessions,
        )

    def figures(self) -> Tuple[str, ...]:
        """The figure ids this scenario regenerates."""
        return self.figure_ids or tuple(figures.figure_ids())


class ScenarioRun:
    """The run artifact: every derived view of one scenario, cached.

    All builds are pure functions of the spec, so lazy construction
    cannot leak order dependence between oracles — any access order
    yields the same artifacts.
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self._results: Dict[str, EcosystemResult] = {}
        self._figure_rows: Dict[Tuple[str, str], Rows] = {}
        self._bytes: Dict[str, bytes] = {}
        self._clean_records: Optional[Tuple[ViewRecord, ...]] = None

    # -- builds ----------------------------------------------------------

    @property
    def result(self) -> EcosystemResult:
        """The canonical serial build."""
        return self._build("base")

    def _build(self, which: str) -> EcosystemResult:
        cached = self._results.get(which)
        if cached is not None:
            return cached
        spec = self.spec
        with obs.span(
            "testkit.build", scenario=spec.name, variant=which
        ):
            if which == "base":
                built = EcosystemGenerator(spec.config()).generate()
            elif which == "parallel":
                built = EcosystemGenerator(spec.config()).generate(
                    jobs=spec.jobs
                )
            elif which == "alt-seed":
                built = EcosystemGenerator(
                    spec.config(seed=spec.alt_seed)
                ).generate()
            elif which == "row":
                built = dataclasses.replace(
                    self.result,
                    dataset=Dataset(
                        self.result.dataset.records, columnar=False
                    ),
                )
            elif which == "perturbed":
                if spec.perturb is None:
                    raise TestkitError(
                        f"scenario {spec.name!r} declares no perturbation"
                    )
                built = get_perturbation(spec.perturb)(self.result)
            else:
                raise TestkitError(f"unknown build variant {which!r}")
        self._results[which] = built
        return built

    def parallel_result(self) -> EcosystemResult:
        """The same config built on a ``jobs=N`` process pool."""
        return self._build("parallel")

    def alt_result(self) -> EcosystemResult:
        """The same config under the alternate seed."""
        return self._build("alt-seed")

    def row_result(self) -> EcosystemResult:
        """The base build with its dataset on the row backend."""
        return self._build("row")

    def perturbed_result(self) -> EcosystemResult:
        """The base build transformed by the spec's perturbation."""
        return self._build("perturbed")

    # -- figure rows -----------------------------------------------------

    def figure_rows(self, figure_id: str, variant: str = "base") -> Rows:
        """Rows of one figure against one build variant, cached."""
        key = (variant, figure_id)
        cached = self._figure_rows.get(key)
        if cached is None:
            cached = figures.run_figure(figure_id, self._build(variant))
            self._figure_rows[key] = cached
        return cached

    def all_figure_rows(self, variant: str = "base") -> Dict[str, Rows]:
        return {
            figure_id: self.figure_rows(figure_id, variant)
            for figure_id in self.spec.figures()
        }

    # -- serialized dataset ----------------------------------------------

    def dataset_bytes(self, variant: str = "base") -> bytes:
        """The exact uncompressed JSONL payload :meth:`Dataset.save`
        writes for this variant's dataset (joined save batches)."""
        cached = self._bytes.get(variant)
        if cached is None:
            records = self._build(variant).dataset.records
            payload = "\n".join(r.to_json() for r in records)
            cached = (payload + "\n").encode("utf-8") if records else b""
            self._bytes[variant] = cached
        return cached

    # -- event replay ----------------------------------------------------

    def clean_records(self, limit: Optional[int] = None) -> Tuple[ViewRecord, ...]:
        """Records replayable as clean event streams (positive playback,
        sub-total rebuffering — the same cut the ingest CLI applies)."""
        if self._clean_records is None:
            self._clean_records = tuple(
                r
                for r in self.result.dataset.records
                if r.view_duration_hours > 0 and r.rebuffer_ratio < 1.0
            )
        if limit is None:
            return self._clean_records
        return self._clean_records[:limit]

    def corrupted_events(self) -> Tuple[List[object], FaultInjector]:
        """The ingest stage's corrupted stream plus its injector audit."""
        from repro.telemetry.ingest import events_from_records

        spec = self.spec.ingest
        if spec is None:
            raise TestkitError(
                f"scenario {self.spec.name!r} has no ingest stage"
            )
        records = self.clean_records(spec.sessions)
        events = list(events_from_records(records))
        injector = FaultInjector(spec.mix(), seed=spec.fault_seed)
        return injector.apply(events), injector


# ---------------------------------------------------------------------------
# Perturbation registry
# ---------------------------------------------------------------------------

#: A perturbation is a pure dataset-level transformation of one built
#: ecosystem — the metamorphic half of a chaos scenario (flash crowd,
#: protocol migration wave, ...).  It must be deterministic: the
#: "perturbed" build variant is cached and compared against "base".
Perturbation = Callable[[EcosystemResult], EcosystemResult]

_PERTURBATIONS: Dict[str, Perturbation] = {}


def register_perturbation(name: str, fn: Perturbation) -> Perturbation:
    """Add a named perturbation (rejects duplicate names)."""
    if not name or any(c.isspace() for c in name):
        raise TestkitError("perturbation name must be non-empty, no spaces")
    if name in _PERTURBATIONS:
        raise TestkitError(f"duplicate perturbation name {name!r}")
    _PERTURBATIONS[name] = fn
    return fn


def perturbation_names() -> List[str]:
    return sorted(_PERTURBATIONS)


def get_perturbation(name: str) -> Perturbation:
    try:
        return _PERTURBATIONS[name]
    except KeyError:
        raise TestkitError(
            f"unknown perturbation {name!r}; known: "
            f"{', '.join(perturbation_names())}"
        ) from None


# ---------------------------------------------------------------------------
# Scenario registry
# ---------------------------------------------------------------------------

_SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a scenario to the library (rejects duplicate names)."""
    if spec.name in _SCENARIOS:
        raise TestkitError(f"duplicate scenario name {spec.name!r}")
    _SCENARIOS[spec.name] = spec
    return spec


def scenario_names() -> List[str]:
    return sorted(_SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise TestkitError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        ) from None


def run_scenario(spec: ScenarioSpec) -> ScenarioRun:
    """Materialize the run artifact (builds happen lazily on access)."""
    return ScenarioRun(spec)


register_scenario(
    ScenarioSpec(
        name="tiny",
        description="smallest legal ecosystem; fastest full-chain smoke",
        seed=1018,
        alt_seed=1019,
        snapshot_limit=2,
        n_publishers=20,
        qoe_sessions=12,
    )
)

register_scenario(
    ScenarioSpec(
        name="paper-shaped",
        description=(
            "the tier-1 fixture shape: seed 2018, 6 snapshots, "
            "110 publishers (the golden-row build)"
        ),
        seed=2018,
        alt_seed=2019,
        snapshot_limit=6,
        n_publishers=110,
    )
)

register_scenario(
    ScenarioSpec(
        name="fault-heavy",
        description=(
            "small build replayed through the fault injector at 30% "
            "corruption; quarantine/repair policies under stress"
        ),
        seed=1404,
        alt_seed=1405,
        snapshot_limit=2,
        n_publishers=24,
        qoe_sessions=12,
        ingest=IngestSpec(sessions=240, fault_rate=0.3, fault_seed=11),
    )
)

register_scenario(
    ScenarioSpec(
        name="syndication-heavy",
        description=(
            "mid-size build with an enlarged §6 QoE study, weighting "
            "the syndication analyses"
        ),
        seed=606,
        alt_seed=607,
        snapshot_limit=3,
        n_publishers=40,
        qoe_sessions=240,
    )
)
