"""The oracle framework: registry, check helper, outcomes.

An **oracle** is a named predicate over a :class:`ScenarioRun` that
either passes, fails with the first violated elementary assertion, or
declares itself inapplicable (e.g. the fault-ingest oracle on a
scenario without an ingest stage).  Oracles come in two kinds:

* ``differential`` — run the same scenario along two independent code
  paths and assert equivalence;
* ``metamorphic`` — transform the scenario's input and assert the
  known relation between the two outputs.

Implementations never use bare ``assert`` (the matrix must also run
under ``python -O`` and outside pytest): they call the :class:`Check`
helper, which counts elementary assertions and raises
:class:`~repro.errors.OracleFailure` carrying an actionable message at
the first violation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro import obs
from repro.errors import OracleFailure, ReproError, TestkitError
from repro.testkit.scenario import ScenarioRun

#: Outcome status values (stable wire strings for the JSON report).
PASS = "pass"
FAIL = "fail"
SKIP = "skip"


class Skip(TestkitError):
    """Raised by an oracle that does not apply to this scenario."""


@dataclass(frozen=True)
class OracleOutcome:
    """One (oracle, scenario) cell of the matrix."""

    oracle: str
    kind: str
    scenario: str
    status: str  # pass | fail | skip
    checks: int
    detail: str

    @property
    def passed(self) -> bool:
        """Skips count as passed: the relation holds vacuously."""
        return self.status != FAIL


class Check:
    """Counts elementary assertions; raises on the first violation.

    All comparison helpers funnel through :meth:`that`, so
    ``outcome.checks`` is an honest measure of how much the oracle
    actually verified — a passing oracle with zero checks is itself a
    bug (the runner flags it).
    """

    def __init__(self) -> None:
        self.count = 0

    def that(self, condition: bool, detail: str) -> None:
        self.count += 1
        if not condition:
            raise OracleFailure(detail)

    def equal(self, actual: object, expected: object, what: str) -> None:
        self.that(
            actual == expected, f"{what}: {actual!r} != {expected!r}"
        )

    def close(
        self,
        actual: float,
        expected: float,
        what: str,
        rel: float = 1e-9,
        abs_tol: float = 1e-12,
    ) -> None:
        actual_f, expected_f = float(actual), float(expected)
        if math.isnan(actual_f) or math.isnan(expected_f):
            self.that(
                math.isnan(actual_f) and math.isnan(expected_f),
                f"{what}: {actual_f} != {expected_f} (NaN mismatch)",
            )
            return
        self.that(
            math.isclose(
                actual_f, expected_f, rel_tol=rel, abs_tol=abs_tol
            ),
            f"{what}: {actual_f} != {expected_f} (rel {rel})",
        )

    def rows_equal(
        self,
        actual: Sequence[Mapping[str, object]],
        expected: Sequence[Mapping[str, object]],
        what: str,
        rel: Optional[float] = None,
    ) -> None:
        """Row-list equivalence.

        ``rel=None`` demands exact equality (the byte-identical
        contracts); a float compares float cells with that relative
        tolerance (summation order may differ between paths).
        """
        self.that(
            len(actual) == len(expected),
            f"{what}: {len(actual)} rows != {len(expected)} rows",
        )
        for index, (row_a, row_b) in enumerate(zip(actual, expected)):
            self.that(
                set(row_a) == set(row_b),
                f"{what} row {index}: columns {sorted(map(str, row_a))} "
                f"!= {sorted(map(str, row_b))}",
            )
            for column in row_a:
                value_a, value_b = row_a[column], row_b[column]
                is_float = isinstance(value_a, float) or isinstance(
                    value_b, float
                )
                if is_float:
                    # rel=None still routes floats through close() so
                    # NaN cells compare equal to NaN (rel 0 == exact).
                    self.close(
                        value_a,
                        value_b,
                        f"{what} row {index} col {column}",
                        rel=rel if rel is not None else 0.0,
                        abs_tol=0.0 if rel is None else 1e-12,
                    )
                else:
                    self.equal(
                        value_a,
                        value_b,
                        f"{what} row {index} col {column}",
                    )

    def dicts_close(
        self,
        actual: Mapping[object, float],
        expected: Mapping[object, float],
        what: str,
        rel: float = 1e-9,
    ) -> None:
        self.that(
            set(actual) == set(expected),
            f"{what}: key sets differ "
            f"(only-left={sorted(map(str, set(actual) - set(expected)))}, "
            f"only-right={sorted(map(str, set(expected) - set(actual)))})",
        )
        for key in actual:
            self.close(actual[key], expected[key], f"{what}[{key}]", rel=rel)


#: An oracle body: performs checks through ``check``; returns a short
#: human summary of what was compared (shown in the report detail).
OracleFn = Callable[[ScenarioRun, Check], str]


@dataclass(frozen=True)
class Oracle:
    """A registered oracle: identity, kind, and body."""

    name: str
    kind: str
    description: str
    fn: OracleFn


_ORACLES: Dict[str, Oracle] = {}


def oracle(
    kind: str, name: str, description: str
) -> Callable[[OracleFn], OracleFn]:
    """Register an oracle body under a kind and name."""
    if kind not in ("differential", "metamorphic"):
        raise TestkitError(f"unknown oracle kind {kind!r}")

    def decorator(fn: OracleFn) -> OracleFn:
        if name in _ORACLES:
            raise TestkitError(f"duplicate oracle name {name!r}")
        _ORACLES[name] = Oracle(
            name=name, kind=kind, description=description, fn=fn
        )
        return fn

    return decorator


def oracle_names() -> List[str]:
    return sorted(_ORACLES)


def oracles_by_kind(kind: str) -> List[Oracle]:
    return [o for name, o in sorted(_ORACLES.items()) if o.kind == kind]


def get_oracle(name: str) -> Oracle:
    try:
        return _ORACLES[name]
    except KeyError:
        raise TestkitError(
            f"unknown oracle {name!r}; known: {', '.join(oracle_names())}"
        ) from None


def run_oracle(target: Oracle, run: ScenarioRun) -> OracleOutcome:
    """Execute one oracle against one scenario run.

    :class:`~repro.errors.OracleFailure` and unexpected library errors
    (:class:`~repro.errors.ReproError`) become failing outcomes with
    the message as detail; programming errors propagate so a broken
    oracle fails loudly instead of reading as a pipeline regression.
    """
    check = Check()
    scenario = run.spec.name
    with obs.span("testkit.oracle", oracle=target.name, scenario=scenario):
        try:
            summary = target.fn(run, check)
            status, detail = PASS, summary
            if check.count == 0:
                status = FAIL
                detail = (
                    f"oracle {target.name} made no checks — a vacuous "
                    "pass is a harness bug"
                )
        except Skip as skip:
            status, detail = SKIP, str(skip)
        except OracleFailure as failure:
            status, detail = FAIL, str(failure)
        except ReproError as error:
            status, detail = (
                FAIL,
                f"unexpected {type(error).__name__}: {error}",
            )
    obs.counter(
        "testkit.oracles", kind=target.kind, status=status
    ).inc()
    obs.counter("testkit.checks").inc(check.count)
    return OracleOutcome(
        oracle=target.name,
        kind=target.kind,
        scenario=scenario,
        status=status,
        checks=check.count,
        detail=detail,
    )
