"""Matrix runner and the machine-readable oracle report.

:func:`run_matrix` executes every applicable oracle against every
requested scenario and folds the outcomes into an
:class:`OracleReport`, the artifact ``repro testkit run --json`` emits
and CI archives.  The payload is deterministic (sorted keys, no
timestamps) so two runs of the same tree diff clean.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.core.report import format_table
from repro.testkit.oracles import (
    FAIL,
    PASS,
    SKIP,
    Oracle,
    OracleOutcome,
    get_oracle,
    oracle_names,
    run_oracle,
)
from repro.testkit.scenario import (
    ScenarioSpec,
    get_scenario,
    run_scenario,
    scenario_names,
)

#: Schema version of the JSON payload; bump on incompatible change.
REPORT_VERSION = 1


@dataclass(frozen=True)
class OracleReport:
    """All outcomes of one scenario x oracle matrix run."""

    outcomes: tuple  # Tuple[OracleOutcome, ...]

    @property
    def passed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == PASS)

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == FAIL)

    @property
    def skipped(self) -> int:
        return sum(1 for o in self.outcomes if o.status == SKIP)

    @property
    def checks(self) -> int:
        return sum(o.checks for o in self.outcomes)

    @property
    def ok(self) -> bool:
        """True when nothing failed and something actually passed."""
        return self.failed == 0 and self.passed > 0

    def failures(self) -> List[OracleOutcome]:
        return [o for o in self.outcomes if o.status == FAIL]

    def to_payload(self) -> Dict[str, object]:
        """The JSON-ready report body (deterministic ordering)."""
        return {
            "version": REPORT_VERSION,
            "scenarios": sorted({o.scenario for o in self.outcomes}),
            "oracles": sorted({o.oracle for o in self.outcomes}),
            "outcomes": [
                {
                    "scenario": o.scenario,
                    "oracle": o.oracle,
                    "kind": o.kind,
                    "status": o.status,
                    "checks": o.checks,
                    "detail": o.detail,
                }
                for o in sorted(
                    self.outcomes, key=lambda o: (o.scenario, o.oracle)
                )
            ],
            "summary": {
                "pass": self.passed,
                "fail": self.failed,
                "skip": self.skipped,
                "checks": self.checks,
                "ok": self.ok,
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_payload(), indent=indent, sort_keys=True)

    def format_text(self) -> str:
        """An aligned text table plus a one-line verdict."""
        rows = [
            {
                "scenario": o.scenario,
                "oracle": o.oracle,
                "kind": o.kind,
                "status": o.status.upper(),
                "checks": o.checks,
            }
            for o in sorted(
                self.outcomes, key=lambda o: (o.scenario, o.oracle)
            )
        ]
        lines = [format_table(rows)]
        for failure in self.failures():
            lines.append(
                f"FAIL {failure.scenario}/{failure.oracle}: "
                f"{failure.detail}"
            )
        verdict = "OK" if self.ok else "FAILED"
        lines.append(
            f"{verdict}: {self.passed} passed, {self.failed} failed, "
            f"{self.skipped} skipped ({self.checks} checks)"
        )
        return "\n".join(lines)


def _resolve_scenarios(
    scenarios: Optional[Sequence[object]],
) -> List[ScenarioSpec]:
    if scenarios is None:
        return [get_scenario(name) for name in scenario_names()]
    resolved = []
    for item in scenarios:
        spec = get_scenario(item) if isinstance(item, str) else item
        resolved.append(spec)
    return resolved


def _resolve_oracles(
    oracles: Optional[Sequence[object]],
) -> List[Oracle]:
    if oracles is None:
        return [get_oracle(name) for name in oracle_names()]
    return [
        get_oracle(item) if isinstance(item, str) else item
        for item in oracles
    ]


def run_matrix(
    scenarios: Optional[Sequence[object]] = None,
    oracles: Optional[Sequence[object]] = None,
) -> OracleReport:
    """Run ``scenarios x oracles`` (defaults: everything registered).

    Items may be names or already-constructed specs/oracles.  Each
    scenario's expensive builds are shared across its oracles through
    the cached :class:`~repro.testkit.scenario.ScenarioRun`.
    """
    specs = _resolve_scenarios(scenarios)
    targets = _resolve_oracles(oracles)
    obs.gauge("testkit.scenarios").set(len(specs))
    outcomes: List[OracleOutcome] = []
    for spec in specs:
        run = run_scenario(spec)
        with obs.span("testkit.scenario", scenario=spec.name):
            for target in targets:
                outcomes.append(run_oracle(target, run))
    return OracleReport(outcomes=tuple(outcomes))
