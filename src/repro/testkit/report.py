"""Matrix runner and the machine-readable oracle report.

:func:`run_matrix` executes every applicable oracle against every
requested scenario and folds the outcomes into an
:class:`OracleReport`, the artifact ``repro testkit run --json`` emits
and CI archives.  The payload is deterministic (sorted keys, no
timestamps) so two runs of the same tree diff clean.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.report import format_table
from repro.parallel import parallel_map, parse_jobs
from repro.testkit.oracles import (
    FAIL,
    PASS,
    SKIP,
    Oracle,
    OracleOutcome,
    get_oracle,
    oracle_names,
    run_oracle,
)
from repro.testkit.scenario import (
    ScenarioRun,
    ScenarioSpec,
    get_scenario,
    run_scenario,
    scenario_names,
)

#: Schema version of the JSON payload; bump on incompatible change.
REPORT_VERSION = 1


@dataclass(frozen=True)
class OracleReport:
    """All outcomes of one scenario x oracle matrix run."""

    outcomes: tuple  # Tuple[OracleOutcome, ...]

    @property
    def passed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == PASS)

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == FAIL)

    @property
    def skipped(self) -> int:
        return sum(1 for o in self.outcomes if o.status == SKIP)

    @property
    def checks(self) -> int:
        return sum(o.checks for o in self.outcomes)

    @property
    def ok(self) -> bool:
        """True when nothing failed and something actually passed."""
        return self.failed == 0 and self.passed > 0

    def failures(self) -> List[OracleOutcome]:
        return [o for o in self.outcomes if o.status == FAIL]

    def to_payload(self) -> Dict[str, object]:
        """The JSON-ready report body (deterministic ordering)."""
        return {
            "version": REPORT_VERSION,
            "scenarios": sorted({o.scenario for o in self.outcomes}),
            "oracles": sorted({o.oracle for o in self.outcomes}),
            "outcomes": [
                {
                    "scenario": o.scenario,
                    "oracle": o.oracle,
                    "kind": o.kind,
                    "status": o.status,
                    "checks": o.checks,
                    "detail": o.detail,
                }
                for o in sorted(
                    self.outcomes, key=lambda o: (o.scenario, o.oracle)
                )
            ],
            "summary": {
                "pass": self.passed,
                "fail": self.failed,
                "skip": self.skipped,
                "checks": self.checks,
                "ok": self.ok,
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_payload(), indent=indent, sort_keys=True)

    def format_text(self) -> str:
        """An aligned text table plus a one-line verdict."""
        rows = [
            {
                "scenario": o.scenario,
                "oracle": o.oracle,
                "kind": o.kind,
                "status": o.status.upper(),
                "checks": o.checks,
            }
            for o in sorted(
                self.outcomes, key=lambda o: (o.scenario, o.oracle)
            )
        ]
        lines = [format_table(rows)]
        for failure in self.failures():
            lines.append(
                f"FAIL {failure.scenario}/{failure.oracle}: "
                f"{failure.detail}"
            )
        verdict = "OK" if self.ok else "FAILED"
        lines.append(
            f"{verdict}: {self.passed} passed, {self.failed} failed, "
            f"{self.skipped} skipped ({self.checks} checks)"
        )
        return "\n".join(lines)


def _resolve_scenarios(
    scenarios: Optional[Sequence[object]],
) -> List[ScenarioSpec]:
    if scenarios is None:
        return [get_scenario(name) for name in scenario_names()]
    resolved = []
    for item in scenarios:
        spec = get_scenario(item) if isinstance(item, str) else item
        resolved.append(spec)
    return resolved


def _resolve_oracles(
    oracles: Optional[Sequence[object]],
) -> List[Oracle]:
    if oracles is None:
        return [get_oracle(name) for name in oracle_names()]
    return [
        get_oracle(item) if isinstance(item, str) else item
        for item in oracles
    ]


@lru_cache(maxsize=1)
def _run_for(spec: ScenarioSpec) -> "ScenarioRun":
    """Per-process run-artifact memo for pool workers.

    One matrix chunk is one scenario's oracle row, so every cell of
    the chunk shares this single cached :class:`ScenarioRun` (and its
    lazily built variants) exactly as the serial loop does —
    ``maxsize=1`` because a worker only ever needs the scenario it is
    currently on.  A pure function of the frozen spec, which is what
    makes the memo RPL104-safe.
    """
    return run_scenario(spec)


def _matrix_cell(cell: Tuple[ScenarioSpec, Oracle]) -> OracleOutcome:
    """Worker entry point: one scenario x oracle cell."""
    spec, target = cell
    return run_oracle(target, _run_for(spec))


def run_matrix(
    scenarios: Optional[Sequence[object]] = None,
    oracles: Optional[Sequence[object]] = None,
    jobs: int = 1,
) -> OracleReport:
    """Run ``scenarios x oracles`` (defaults: everything registered).

    Items may be names or already-constructed specs/oracles.  Each
    scenario's expensive builds are shared across its oracles through
    the cached :class:`~repro.testkit.scenario.ScenarioRun`.

    ``jobs > 1`` fans the matrix onto a process pool, one task per
    cell, chunked so a scenario's whole oracle row stays on one worker
    (each scenario is still built exactly once).  Outcomes come back
    in the same (scenario, oracle) order as the serial loop, so the
    JSON report is byte-identical and merged obs counters match the
    serial totals.
    """
    specs = _resolve_scenarios(scenarios)
    targets = _resolve_oracles(oracles)
    jobs = parse_jobs(jobs)
    obs.gauge("testkit.scenarios").set(len(specs))
    if jobs == 1 or not specs or not targets:
        outcomes: List[OracleOutcome] = []
        for spec in specs:
            run = run_scenario(spec)
            with obs.span("testkit.scenario", scenario=spec.name):
                for target in targets:
                    outcomes.append(run_oracle(target, run))
        return OracleReport(outcomes=tuple(outcomes))
    _run_for.cache_clear()
    cells = [(spec, target) for spec in specs for target in targets]
    parallel = parallel_map(
        _matrix_cell,
        cells,
        jobs=jobs,
        chunk_sizes=[len(targets)] * len(specs),
        label="testkit.matrix",
    )
    return OracleReport(outcomes=tuple(parallel))
