"""Metamorphic oracles: known relations between transformed runs.

No ground truth exists for a synthetic ecosystem's statistics, but
*relations* between runs are known a priori (Chen et al.'s metamorphic
testing, applied to the measurement pipeline):

* shuffling record order changes nothing (analyses are set-valued);
* removing publishers can only shrink per-value publisher counts;
* scaling every view duration by one constant leaves every *share*
  untouched;
* changing the seed must change the data — an oracle suite that cannot
  tell two seeds apart would also wave through a frozen pipeline.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Set

from repro.core import prevalence as prevalence_mod
from repro.core import summary as summary_mod
from repro.core.dimensions import (
    CdnDimension,
    Dimension,
    PlatformDimension,
    ProtocolDimension,
)
from repro.telemetry.dataset import Dataset
from repro.testkit.oracles import Check, oracle
from repro.testkit.scenario import ScenarioRun

#: Tolerance for float drift from reordered summation.
_PERMUTATION_REL = 1e-6

#: Publishers removed by the subset-monotonicity oracle.
_SUBSET_DROP = 3

#: Uniform view-duration multiplier for the scale-invariance oracle.
_SCALE_FACTOR = 3.0

#: Figures probed for seed sensitivity, in preference order.
_SENSITIVE_FIGURES = ("F2a", "S44", "F11b", "F3a", "F6a")


def _dimensions() -> Dict[str, Dimension]:
    return {
        "protocol": ProtocolDimension(http_only=False),
        "platform": PlatformDimension(),
        "cdn": CdnDimension(),
    }


def _publisher_counts(dataset: Dataset, dimension: Dimension) -> Dict[object, int]:
    """Distinct publishers per dimension value (latest-snapshot cut).

    Uses the vectorized ``publishers_per_value`` path when the
    dimension publishes a column key and the generic row path for the
    multi-valued CDN dimension — the same split the prevalence
    analyses make.
    """
    if dimension.column_key is not None and dataset.columnar:
        return dataset.publishers_per_value(dimension.column_key)
    sets: Dict[object, Set[str]] = {}
    for record in dataset.records:
        for value in dimension.values(record):
            sets.setdefault(value, set()).add(record.publisher_id)
    return {value: len(pubs) for value, pubs in sets.items()}


@oracle(
    "metamorphic",
    "permutation-invariance",
    "record order never changes an analysis",
)
def permutation_invariance(run: ScenarioRun, check: Check) -> str:
    """Analyses are functions of the record *set*, not the stream."""
    base = run.result
    shuffled = list(base.dataset.records)
    random.Random(run.spec.seed ^ 0x5EED).shuffle(shuffled)
    check.that(
        len(shuffled) > 1, "scenario too small to permute meaningfully"
    )
    permuted = dataclasses.replace(base, dataset=Dataset(shuffled))
    check.equal(
        permuted.dataset.snapshots(),
        base.dataset.snapshots(),
        "snapshot list under permutation",
    )
    check.close(
        permuted.dataset.total_view_hours(),
        base.dataset.total_view_hours(),
        "total view-hours under permutation",
        rel=_PERMUTATION_REL,
    )
    from repro import figures as figures_mod

    for figure_id in run.spec.figures():
        check.rows_equal(
            figures_mod.run_figure(figure_id, permuted),
            run.figure_rows(figure_id),
            f"figure {figure_id} under permutation",
            rel=_PERMUTATION_REL,
        )
    return (
        f"{len(run.spec.figures())} figures invariant under a seeded "
        f"shuffle of {len(shuffled)} records"
    )


@oracle(
    "metamorphic",
    "subset-monotonicity",
    "removing publishers can only shrink prevalence counts",
)
def subset_monotonicity(run: ScenarioRun, check: Check) -> str:
    """Per-value publisher counts are monotone under publisher removal."""
    latest = run.result.dataset.latest()
    dropped = latest.top_publishers(_SUBSET_DROP)
    check.that(
        len(dropped) == _SUBSET_DROP,
        f"scenario has fewer than {_SUBSET_DROP} publishers",
    )
    subset = latest.exclude_publishers(dropped)
    check.equal(
        subset.publishers(),
        latest.publishers() - set(dropped),
        "publisher set after exclusion",
    )
    compared = 0
    for name, dimension in sorted(_dimensions().items()):
        full = _publisher_counts(latest, dimension)
        sub = _publisher_counts(subset, dimension)
        check.that(
            set(sub) <= set(full),
            f"{name}: exclusion invented new values "
            f"{sorted(map(str, set(sub) - set(full)))}",
        )
        for value, count in sorted(sub.items(), key=lambda kv: str(kv[0])):
            check.that(
                count <= full[value],
                f"{name}[{value}]: count rose from {full[value]} to "
                f"{count} after removing publishers",
            )
            check.that(
                count >= full[value] - _SUBSET_DROP,
                f"{name}[{value}]: count fell by more than the "
                f"{_SUBSET_DROP} removed publishers "
                f"({full[value]} -> {count})",
            )
            compared += 1
    return (
        f"{compared} (dimension, value) counts monotone after removing "
        f"the top {_SUBSET_DROP} publishers"
    )


@oracle(
    "metamorphic",
    "scale-invariance",
    "uniformly scaling view durations leaves every share unchanged",
)
def scale_invariance(run: ScenarioRun, check: Check) -> str:
    """Shares are ratios: a global x3 on durations must cancel out."""
    base = run.result.dataset
    scaled = Dataset(
        dataclasses.replace(
            record,
            view_duration_hours=record.view_duration_hours * _SCALE_FACTOR,
        )
        for record in base.records
    )
    check.close(
        scaled.total_view_hours(),
        base.total_view_hours() * _SCALE_FACTOR,
        "scaled total view-hours",
        rel=1e-9,
    )
    for name, dimension in sorted(_dimensions().items()):
        series_base = prevalence_mod.view_hour_share_series(base, dimension)
        series_scaled = prevalence_mod.view_hour_share_series(
            scaled, dimension
        )
        check.equal(
            sorted(series_scaled),
            sorted(series_base),
            f"{name} share-series snapshots",
        )
        for snapshot in series_base:
            check.dicts_close(
                series_scaled[snapshot],
                series_base[snapshot],
                f"{name} shares at {snapshot}",
                rel=1e-9,
            )
    check.close(
        summary_mod.top_cdn_concentration(scaled.latest()),
        summary_mod.top_cdn_concentration(base.latest()),
        "top-5 CDN concentration",
        rel=1e-9,
    )
    rtmp_base = summary_mod.rtmp_share(base)
    rtmp_scaled = summary_mod.rtmp_share(scaled)
    for which in ("first", "latest"):
        check.close(
            rtmp_scaled[which],
            rtmp_base[which],
            f"RTMP share ({which} snapshot)",
            rel=1e-9,
        )
    return (
        f"3 dimensions' share series + CDN concentration + RTMP share "
        f"invariant under a uniform x{_SCALE_FACTOR:g} duration scale"
    )


@oracle(
    "metamorphic",
    "seed-sensitivity",
    "a different seed must produce different data and figures",
)
def seed_sensitivity(run: ScenarioRun, check: Check) -> str:
    """The negative control: identical output across seeds would mean
    the seed (i.e. the synthesis) is not actually flowing anywhere."""
    check.that(
        run.dataset_bytes("alt-seed") != run.dataset_bytes("base"),
        f"seeds {run.spec.seed} and {run.spec.alt_seed} serialized to "
        "identical datasets",
    )
    probed = [
        figure_id
        for figure_id in _SENSITIVE_FIGURES
        if figure_id in run.spec.figures()
    ]
    check.that(
        len(probed) > 0,
        "scenario regenerates none of the seed-sensitive figures "
        f"{_SENSITIVE_FIGURES}",
    )
    changed = [
        figure_id
        for figure_id in probed
        if run.figure_rows(figure_id, "alt-seed")
        != run.figure_rows(figure_id)
    ]
    check.that(
        len(changed) > 0,
        f"none of {probed} changed between seeds {run.spec.seed} and "
        f"{run.spec.alt_seed}",
    )
    return (
        f"datasets differ and {len(changed)}/{len(probed)} probed "
        f"figures changed between seeds {run.spec.seed} and "
        f"{run.spec.alt_seed}"
    )
