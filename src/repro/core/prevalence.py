"""Prevalence analyses: how each dimension evolved (Figs 2, 6, 7, 10, 11).

Two generic time series per dimension:

* *across publishers* — % of publishers with at least one view on a
  value in each snapshot (sums can exceed 100%: publishers support
  multiple values);
* *by view-hours* (or views) — % of snapshot view-hours attributable to
  each value, optionally excluding named publishers (the paper's
  "remove the largest publishers" cuts, Figs 2c and 6b).
"""

from __future__ import annotations

from collections import defaultdict
from datetime import date
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.core.dimensions import Dimension
from repro.telemetry.dataset import Dataset

#: snapshot date -> value -> percentage
SeriesByValue = Dict[date, Dict[object, float]]


def publisher_support_series(
    dataset: Dataset, dimension: Dimension
) -> SeriesByValue:
    """% of publishers supporting each value, per snapshot (Figs 2a, 7, 11a)."""
    if len(dataset) == 0:
        raise AnalysisError("dataset is empty")
    key = dimension.column_key
    series: SeriesByValue = {}
    for snapshot in dataset.snapshots():
        snap = dataset.for_snapshot(snapshot)
        if key is not None and snap.columnar:
            per_value = snap.publishers_per_value(key)
            total = len(snap.publishers())
            series[snapshot] = {
                value: 100.0 * count / total
                for value, count in per_value.items()
            }
            continue
        publishers_by_value: Dict[object, set] = defaultdict(set)
        all_publishers = set()
        for record in snap:
            all_publishers.add(record.publisher_id)
            for value in dimension.values(record):
                publishers_by_value[value].add(record.publisher_id)
        total = len(all_publishers)
        series[snapshot] = {
            value: 100.0 * len(publishers) / total
            for value, publishers in publishers_by_value.items()
        }
    return series


def view_hour_share_series(
    dataset: Dataset,
    dimension: Dimension,
    exclude_publishers: Iterable[str] = (),
    by_views: bool = False,
) -> SeriesByValue:
    """% of view-hours (or views) per value, per snapshot.

    Figs 2b/6a/10/11b; with ``exclude_publishers`` it is Figs 2c/6b; with
    ``by_views=True`` it is Fig 6c.  Percentages are of the in-scope
    total (records the dimension classifies), so they sum to ~100%.
    """
    excluded = set(exclude_publishers)
    key = dimension.column_key
    series: SeriesByValue = {}
    for snapshot in dataset.snapshots():
        snap = dataset.for_snapshot(snapshot)
        if key is not None and snap.columnar:
            if excluded:
                snap = snap.exclude_publishers(excluded)
            totals_by_value = (
                snap.views_by(key) if by_views else snap.view_hours_by(key)
            )
            in_scope = sum(totals_by_value.values())
            if in_scope <= 0:
                raise AnalysisError(
                    f"snapshot {snapshot} has no in-scope records"
                )
            series[snapshot] = {
                value: 100.0 * total / in_scope
                for value, total in totals_by_value.items()
            }
            continue
        totals: Dict[object, float] = defaultdict(float)
        in_scope_total = 0.0
        for record in snap:
            if record.publisher_id in excluded:
                continue
            weighted = dimension.weighted_values(record)
            if not weighted:
                continue
            amount = record.views if by_views else record.view_hours
            in_scope_total += amount
            for value, fraction in weighted:
                totals[value] += amount * fraction
        if in_scope_total <= 0:
            raise AnalysisError(
                f"snapshot {snapshot} has no in-scope records"
            )
        series[snapshot] = {
            value: 100.0 * total / in_scope_total
            for value, total in totals.items()
        }
    return series


def share_at(
    series: SeriesByValue, snapshot: date, value: object
) -> float:
    """Share of one value at one snapshot (0 when absent)."""
    if snapshot not in series:
        raise AnalysisError(f"no snapshot {snapshot} in series")
    return series[snapshot].get(value, 0.0)


def first_last(
    series: SeriesByValue, value: object
) -> Tuple[float, float]:
    """(first snapshot share, last snapshot share) of one value."""
    if not series:
        raise AnalysisError("empty series")
    snapshots = sorted(series)
    return (
        series[snapshots[0]].get(value, 0.0),
        series[snapshots[-1]].get(value, 0.0),
    )


def top_values(
    series: SeriesByValue, snapshot: Optional[date] = None, n: int = 5
) -> List[object]:
    """Values ranked by share at one snapshot (default: the latest)."""
    if not series:
        raise AnalysisError("empty series")
    snapshot = snapshot if snapshot is not None else sorted(series)[-1]
    shares = series[snapshot]
    return sorted(shares, key=lambda v: shares[v], reverse=True)[:n]


def series_rows(
    series: SeriesByValue, values: Sequence[object]
) -> List[Dict[str, object]]:
    """Flatten a series into printable rows (one per snapshot)."""
    rows: List[Dict[str, object]] = []
    for snapshot in sorted(series):
        row: Dict[str, object] = {"snapshot": snapshot.isoformat()}
        for value in values:
            label = getattr(value, "display_name", None) or getattr(
                value, "value", None
            ) or str(value)
            row[str(label)] = round(series[snapshot].get(value, 0.0), 2)
        rows.append(row)
    return rows
