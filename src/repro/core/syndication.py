"""Syndication analyses (§6, Figs 14-17).

* Fig 14 — prevalence: for each content owner, the percentage of all
  full syndicators that carry its content, read off the per-view
  owned/syndicated flag exactly as in the paper.
* Fig 17 — bitrate divergence: the ladders the owner and each
  syndicator encode one popular video with, for a fixed device class.
* Figs 15/16 — QoE: average-bitrate and rebuffering CDFs of owner
  versus syndicator clients for that video, restricted to one device,
  connection, geography and (ISP, CDN) combination.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import AnalysisError
from repro.stats.cdf import ECDF
from repro.telemetry.dataset import Dataset
from repro.telemetry.records import ViewRecord


def observed_syndicators(dataset: Dataset) -> Set[str]:
    """Publishers seen serving someone else's content."""
    return {r.publisher_id for r in dataset if r.is_syndicated}


def observed_owners(dataset: Dataset) -> Set[str]:
    """Owners: publishers serving owned content that also appears
    syndicated elsewhere, plus any publisher named as an owner."""
    named = {r.owner_id for r in dataset if r.owner_id is not None}
    return named


def syndicator_fraction_per_owner(dataset: Dataset) -> Dict[str, float]:
    """Per owner, % of all observed full syndicators carrying it (Fig 14).

    Owners whose content is never syndicated get 0% — the paper's CDF
    starts with ~18% of owners at zero.
    """
    syndicators = observed_syndicators(dataset)
    if not syndicators:
        raise AnalysisError("no syndicated views in dataset")
    carriers: Dict[str, Set[str]] = defaultdict(set)
    owners: Set[str] = set()
    for record in dataset:
        if record.owner_id is not None:
            owners.add(record.owner_id)
            if record.is_syndicated:
                carriers[record.owner_id].add(record.publisher_id)
    # Owners also include publishers serving only owned content; those
    # without any owner_id references simply never syndicated.
    return {
        owner: 100.0 * len(carriers.get(owner, set())) / len(syndicators)
        for owner in owners
    }


def syndication_cdf(dataset: Dataset) -> ECDF:
    """Fig 14's CDF across owners of % syndicators used."""
    fractions = syndicator_fraction_per_owner(dataset)
    return ECDF(fractions.values())


def prevalence_summary(dataset: Dataset) -> Dict[str, float]:
    """§6 headline numbers: owners with >=1 syndicator; owners reaching
    a third of syndicators."""
    fractions = list(syndicator_fraction_per_owner(dataset).values())
    if not fractions:
        raise AnalysisError("no owners observed")
    n = len(fractions)
    return {
        "pct_owners_with_syndicator": 100.0
        * sum(1 for f in fractions if f > 0) / n,
        "pct_owners_third_of_syndicators": 100.0
        * sum(1 for f in fractions if f >= 100.0 / 3.0) / n,
    }


# ---------------------------------------------------------------------------
# Fig 17: bitrate ladder divergence
# ---------------------------------------------------------------------------


def ladders_for_video(
    dataset: Dataset,
    video_id: str,
    device_model: str = "ipad",
    connection_value: str = "wifi",
) -> Dict[str, Tuple[float, ...]]:
    """publisher_id -> encoded ladder observed for one video (Fig 17).

    Restricted to one device class and connection type for a fair
    comparison, as in the paper.
    """
    ladders: Dict[str, Tuple[float, ...]] = {}
    for record in dataset:
        if record.video_id != video_id:
            continue
        if record.device_model != device_model:
            continue
        if record.connection.value != connection_value:
            continue
        ladders[record.publisher_id] = record.bitrate_ladder_kbps
    if not ladders:
        raise AnalysisError(
            f"no views of {video_id!r} on {device_model}/{connection_value}"
        )
    return ladders


@dataclass(frozen=True)
class LadderDivergence:
    """Fig 17 summary statistics."""

    ladder_sizes: Dict[str, int]
    max_bitrates: Dict[str, float]
    owner_id: str

    @property
    def size_range(self) -> Tuple[int, int]:
        return min(self.ladder_sizes.values()), max(self.ladder_sizes.values())

    def owner_to_weakest_ratio(self) -> float:
        """Owner's top rung over the weakest syndicator's top rung
        (the paper's '7x lower' comparison with S1)."""
        others = [
            rate
            for pid, rate in self.max_bitrates.items()
            if pid != self.owner_id
        ]
        if not others:
            raise AnalysisError("no syndicator ladders present")
        return self.max_bitrates[self.owner_id] / min(others)


def ladder_divergence(
    dataset: Dataset, video_id: str, owner_id: str, **filters
) -> LadderDivergence:
    ladders = ladders_for_video(dataset, video_id, **filters)
    if owner_id not in ladders:
        raise AnalysisError(f"owner {owner_id!r} has no views of the video")
    return LadderDivergence(
        ladder_sizes={pid: len(l) for pid, l in ladders.items()},
        max_bitrates={pid: max(l) for pid, l in ladders.items()},
        owner_id=owner_id,
    )


# ---------------------------------------------------------------------------
# Figs 15/16: QoE comparison
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QoeComparison:
    """Owner vs syndicator QoE on one (ISP, CDN) combination."""

    isp: str
    cdn_name: str
    owner_bitrate: ECDF
    syndicator_bitrate: ECDF
    owner_rebuffer: ECDF
    syndicator_rebuffer: ECDF

    def median_bitrate_gain(self) -> float:
        """Owner's median average bitrate over the syndicator's (Fig 15:
        ~2.5x)."""
        denominator = self.syndicator_bitrate.median()
        if denominator <= 0:
            raise AnalysisError("syndicator median bitrate is zero")
        return self.owner_bitrate.median() / denominator

    def p90_rebuffer_reduction(self) -> float:
        """Relative reduction in the 90th-percentile rebuffering ratio
        for owner clients (Fig 16: ~40% lower)."""
        syndicator_p90 = self.syndicator_rebuffer.quantile(0.9)
        if syndicator_p90 <= 0:
            return 0.0
        owner_p90 = self.owner_rebuffer.quantile(0.9)
        return 1.0 - owner_p90 / syndicator_p90


def _qoe_records(
    dataset: Dataset,
    publisher_id: str,
    video_id: str,
    isp: str,
    cdn_name: str,
    device_model: str,
    geo: str,
) -> List[ViewRecord]:
    return [
        r
        for r in dataset
        if r.publisher_id == publisher_id
        and r.video_id == video_id
        and r.isp == isp
        and cdn_name in r.cdn_names
        and r.device_model == device_model
        and r.geo == geo
    ]


def qoe_comparison(
    dataset: Dataset,
    owner_id: str,
    syndicator_id: str,
    video_id: str,
    isp: str,
    cdn_name: str,
    device_model: str = "ipad",
    geo: str = "CA",
) -> QoeComparison:
    """Figs 15/16 for one (ISP, CDN) combination."""
    owner_records = _qoe_records(
        dataset, owner_id, video_id, isp, cdn_name, device_model, geo
    )
    syndicator_records = _qoe_records(
        dataset, syndicator_id, video_id, isp, cdn_name, device_model, geo
    )
    if not owner_records or not syndicator_records:
        raise AnalysisError(
            f"missing owner/syndicator views on ISP {isp}, CDN {cdn_name}"
        )
    return QoeComparison(
        isp=isp,
        cdn_name=cdn_name,
        owner_bitrate=ECDF([r.avg_bitrate_kbps for r in owner_records]),
        syndicator_bitrate=ECDF(
            [r.avg_bitrate_kbps for r in syndicator_records]
        ),
        owner_rebuffer=ECDF([r.rebuffer_ratio for r in owner_records]),
        syndicator_rebuffer=ECDF(
            [r.rebuffer_ratio for r in syndicator_records]
        ),
    )
