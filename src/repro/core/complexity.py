"""Management-complexity metrics and their size correlation (§5, Fig 13).

Three measures per publisher, computed from what telemetry observes:

* **management-plane combinations** — distinct (CDN, protocol, device
  model) triples, the failure-triaging search space;
* **protocol-titles** — protocols x distinct video titles, the
  packaging workload (title counts come from the publisher-metadata
  side channel when provided, since telemetry under-samples large
  catalogues — the paper makes the same under-estimate caveat in §3);
* **unique SDKs** — distinct (SDK, version) pairs plus distinct
  browsers, the playback-software maintenance surface.

Each is fitted against publisher view-hours on log-log axes; the paper
reports per-decade growth factors of 1.72x, 3.8x and 1.8x, all
sub-linear, with p-values below 1e-9.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Set, Tuple

from repro.core.dimensions import record_protocol
from repro.errors import AnalysisError
from repro.playback.useragent import parse_user_agent
from repro.stats.regression import LogLogFit, fit_loglog
from repro.telemetry.dataset import Dataset


@dataclass(frozen=True)
class ComplexityMetrics:
    """The §5 complexity measures for one publisher."""

    publisher_id: str
    view_hours: float
    combinations: int
    protocol_titles: int
    unique_sdks: int


def publisher_complexity(
    dataset: Dataset,
    catalogue_sizes: Optional[Mapping[str, int]] = None,
) -> Dict[str, ComplexityMetrics]:
    """Complexity metrics per publisher for a dataset slice.

    ``catalogue_sizes`` supplies true title counts per publisher; when
    absent, distinct video IDs observed in telemetry are used (an
    under-estimate, as §3 notes of the paper's own data).
    """
    combos: Dict[str, Set[Tuple[str, str, str]]] = defaultdict(set)
    protocols: Dict[str, Set[str]] = defaultdict(set)
    titles: Dict[str, Set[str]] = defaultdict(set)
    sdk_versions: Dict[str, Set[str]] = defaultdict(set)
    browsers: Dict[str, Set[str]] = defaultdict(set)
    vh: Dict[str, float] = defaultdict(float)

    for record in dataset:
        pid = record.publisher_id
        vh[pid] += record.view_hours
        protocol = record_protocol(record)
        protocol_name = protocol.value if protocol else "unknown"
        if protocol and protocol.is_http_adaptive:
            protocols[pid].add(protocol_name)
        titles[pid].add(record.video_id)
        for cdn in record.cdn_names:
            combos[pid].add((cdn, protocol_name, record.device_model))
        if record.sdk_name:
            sdk_versions[pid].add(
                f"{record.sdk_name}/{record.sdk_version or '?'}"
            )
        elif record.user_agent:
            info = parse_user_agent(record.user_agent)
            browsers[pid].add(f"{record.device_model}")

    if not vh:
        raise AnalysisError("dataset has no records")

    metrics: Dict[str, ComplexityMetrics] = {}
    for pid in vh:
        title_count = (
            catalogue_sizes.get(pid, len(titles[pid]))
            if catalogue_sizes is not None
            else len(titles[pid])
        )
        metrics[pid] = ComplexityMetrics(
            publisher_id=pid,
            view_hours=vh[pid],
            combinations=len(combos[pid]),
            protocol_titles=max(len(protocols[pid]), 1) * title_count,
            unique_sdks=len(sdk_versions[pid]) + len(browsers[pid]),
        )
    return metrics


@dataclass(frozen=True)
class ComplexityFits:
    """Fig 13's three regressions."""

    combinations: LogLogFit
    protocol_titles: LogLogFit
    unique_sdks: LogLogFit

    def all_sublinear(self) -> bool:
        return (
            self.combinations.is_sublinear
            and self.protocol_titles.is_sublinear
            and self.unique_sdks.is_sublinear
        )

    def all_significant(self, alpha: float = 0.05) -> bool:
        return (
            self.combinations.p_value < alpha
            and self.protocol_titles.p_value < alpha
            and self.unique_sdks.p_value < alpha
        )


def fit_complexity(
    metrics: Mapping[str, ComplexityMetrics]
) -> ComplexityFits:
    """Fit all three log-log regressions against view-hours."""
    rows = [
        m
        for m in metrics.values()
        if m.view_hours > 0
        and m.combinations > 0
        and m.protocol_titles > 0
        and m.unique_sdks > 0
    ]
    if len(rows) < 3:
        raise AnalysisError("need at least three publishers to fit")
    vh = [m.view_hours for m in rows]
    return ComplexityFits(
        combinations=fit_loglog(vh, [m.combinations for m in rows]),
        protocol_titles=fit_loglog(vh, [m.protocol_titles for m in rows]),
        unique_sdks=fit_loglog(vh, [m.unique_sdks for m in rows]),
    )


def max_unique_sdks(metrics: Mapping[str, ComplexityMetrics]) -> int:
    """Largest maintenance surface — the paper's '85 code bases'."""
    if not metrics:
        raise AnalysisError("no metrics")
    return max(m.unique_sdks for m in metrics.values())
