"""Integrated-syndication what-if analysis (extension of §6).

The paper sketches two integrated models — API integration (the
syndicator uses the owner's manifest and CDN) and app integration (the
owner's app is embedded) — and notes two open problems: quantifying the
QoE equalization, and the *accounting* problem of splitting CDN usage
between the owner's and syndicators' clients once they share one
delivery path.  This module answers both against the simulated case
study:

* :func:`integrated_qoe_projection` replays every syndicator client
  session over the owner's ladder on identical network draws — what
  Figs 15/16 would look like after integration.
* :func:`accounting_report` attributes the shared CDN's served
  view-hours and bytes back to the owner and each syndicator (the
  accounting mechanism API integration needs).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.delivery.network import NetworkPath, default_isp_profiles
from repro.parallel import parallel_map
from repro.entities.ladder import BitrateLadder
from repro.errors import AnalysisError
from repro.playback.abr import AbrAlgorithm, ThroughputAbr
from repro.playback.session import SessionConfig, simulate_session
from repro.stats.cdf import ECDF
from repro.synthesis.syndication import CaseStudy
from repro.telemetry.dataset import Dataset


@dataclass(frozen=True)
class QoeProjection:
    """Syndicator QoE, before and after API/app integration."""

    isp: str
    cdn_name: str
    label: str
    before_median_kbps: float
    after_median_kbps: float
    before_p90_rebuffer: float
    after_p90_rebuffer: float

    @property
    def bitrate_gain(self) -> float:
        if self.before_median_kbps <= 0:
            raise AnalysisError("degenerate pre-integration bitrate")
        return self.after_median_kbps / self.before_median_kbps

    @property
    def rebuffer_reduction(self) -> float:
        if self.before_p90_rebuffer <= 0:
            return 0.0
        return 1.0 - self.after_p90_rebuffer / self.before_p90_rebuffer


def integrated_qoe_projection(
    case_study: CaseStudy,
    label: str,
    isp: str,
    cdn_name: str,
    sessions: int = 200,
    seed: int = 7,
    abr: Optional[AbrAlgorithm] = None,
    path: Optional[NetworkPath] = None,
) -> QoeProjection:
    """Project one syndicator's QoE under integrated syndication.

    Each simulated client session is run twice on the *same* network
    draw: once over the syndicator's own ladder (today), once over the
    owner's ladder (after integration).  With app/API integration the
    syndicator cannot choose different bitrates than the owner (§6), so
    the post-integration ladder is exactly the owner's.
    """
    if sessions < 10:
        raise AnalysisError("need at least 10 sessions")
    if path is None:
        path = default_isp_profiles()[isp].path_to(cdn_name)
    abr = abr or ThroughputAbr(safety=0.85)
    rng = np.random.default_rng(seed)
    config = SessionConfig(
        view_seconds=900.0, chunk_seconds=6.0, max_buffer_seconds=20.0
    )
    own_ladder = case_study.ladder(label)
    owner_ladder = case_study.ladder("O")
    means = [path.sample_session_mean(rng) for _ in range(sessions)]
    before_rates: List[float] = []
    after_rates: List[float] = []
    before_rebuffer: List[float] = []
    after_rebuffer: List[float] = []
    for mean_kbps in means:
        before = simulate_session(
            own_ladder, path, config, rng, abr=abr,
            session_mean_kbps=mean_kbps,
        )
        after = simulate_session(
            owner_ladder, path, config, rng, abr=abr,
            session_mean_kbps=mean_kbps,
        )
        before_rates.append(before.average_bitrate_kbps)
        after_rates.append(after.average_bitrate_kbps)
        before_rebuffer.append(before.rebuffer_ratio)
        after_rebuffer.append(after.rebuffer_ratio)
    return QoeProjection(
        isp=isp,
        cdn_name=cdn_name,
        label=label,
        before_median_kbps=ECDF(before_rates).median(),
        after_median_kbps=ECDF(after_rates).median(),
        before_p90_rebuffer=ECDF(before_rebuffer).quantile(0.9),
        after_p90_rebuffer=ECDF(after_rebuffer).quantile(0.9),
    )


def _projection_task(
    case_study: CaseStudy,
    isp: str,
    cdn_name: str,
    sessions: int,
    seed: int,
    label: str,
) -> QoeProjection:
    """Worker entry point: one syndicator's full projection."""
    return integrated_qoe_projection(
        case_study, label, isp, cdn_name, sessions=sessions, seed=seed
    )


def project_all_syndicators(
    case_study: CaseStudy,
    isp: str = "X",
    cdn_name: str = "A",
    sessions: int = 120,
    seed: int = 7,
    jobs: int = 1,
) -> Dict[str, QoeProjection]:
    """QoE projections for every syndicator in the case study.

    Each label's projection consumes its own ``default_rng(seed)``
    from scratch (the before/after pairing *requires* one sequential
    stream per label), so the per-label fan-out under ``jobs > 1`` is
    byte-identical to the serial loop by construction.
    """
    labels = list(case_study.syndicator_labels)
    projections = parallel_map(
        partial(
            _projection_task, case_study, isp, cdn_name, sessions, seed
        ),
        labels,
        jobs=jobs,
        chunk_sizes=[1] * len(labels) if labels else None,
        label="playback.projections",
    )
    return dict(zip(labels, projections))


# ---------------------------------------------------------------------------
# Accounting: split shared-CDN usage per client population.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AccountingEntry:
    """CDN usage attributable to one publisher's clients."""

    publisher_id: str
    views: float
    view_hours: float
    delivered_gigabytes: float

    @property
    def mean_bitrate_kbps(self) -> float:
        if self.view_hours <= 0:
            return 0.0
        return self.delivered_gigabytes * 8e6 / (self.view_hours * 3600.0)


def accounting_report(
    dataset: Dataset,
    cdn_name: str,
    video_ids: Optional[frozenset] = None,
) -> Dict[str, AccountingEntry]:
    """Attribute one CDN's delivered traffic per publisher (§6's open
    accounting problem for API integration).

    Delivered bytes are estimated from each view's average bitrate and
    duration; multi-CDN views split their traffic evenly across their
    CDNs (the same §3 rule the share analyses use).
    """
    views: Dict[str, float] = defaultdict(float)
    view_hours: Dict[str, float] = defaultdict(float)
    gigabytes: Dict[str, float] = defaultdict(float)
    for record in dataset:
        if cdn_name not in record.cdn_names:
            continue
        if video_ids is not None and record.video_id not in video_ids:
            continue
        fraction = 1.0 / len(record.cdn_names)
        hours = record.view_hours * fraction
        views[record.publisher_id] += record.views * fraction
        view_hours[record.publisher_id] += hours
        # kbps * hours * 3600 s/h / 8 bits-per-byte / 1e6 kB-per-GB
        gigabytes[record.publisher_id] += (
            record.avg_bitrate_kbps * hours * 3600.0 / 8.0 / 1e6
        )
    if not views:
        raise AnalysisError(f"no traffic observed on CDN {cdn_name!r}")
    return {
        publisher_id: AccountingEntry(
            publisher_id=publisher_id,
            views=views[publisher_id],
            view_hours=view_hours[publisher_id],
            delivered_gigabytes=gigabytes[publisher_id],
        )
        for publisher_id in views
    }


def owner_share_of_cdn(
    dataset: Dataset, cdn_name: str, owner_id: str
) -> float:
    """Fraction of a CDN's delivered bytes attributable to the owner."""
    report = accounting_report(dataset, cdn_name)
    total = sum(entry.delivered_gigabytes for entry in report.values())
    if total <= 0:
        raise AnalysisError("no delivered bytes on this CDN")
    owner = report.get(owner_id)
    return (owner.delivered_gigabytes / total) if owner else 0.0
