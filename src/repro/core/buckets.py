"""Counts bucketed by publisher view-hours (Figs 3b, 9b, 12b).

Publishers are grouped into decades of daily view-hours (the paper's
confidential ``X`` is our calibrated base); each bucket is decomposed by
how many protocols / platforms / CDNs its publishers use.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.counts import publisher_counts
from repro.core.dimensions import Dimension
from repro.errors import AnalysisError
from repro.stats.bucketing import DecadeBuckets
from repro.synthesis.calibration import (
    SIZE_BUCKET_FRACTIONS,
    VIEW_HOUR_BASE_X,
)
from repro.telemetry.dataset import Dataset


def bucketed_counts(
    dataset: Dataset,
    dimension: Dimension,
    base: Optional[float] = None,
    n_buckets: Optional[int] = None,
    window_days: float = 2.0,
) -> DecadeBuckets:
    """Decade buckets of per-publisher counts for one snapshot slice.

    ``dataset`` should be a single-snapshot slice (the paper uses the
    latest); view-hours are normalized from the two-day window back to
    daily so the bucket edges line up with ``X``.
    """
    if window_days <= 0:
        raise AnalysisError("window must be positive")
    counts = publisher_counts(dataset, dimension)
    vh = dataset.publisher_view_hours()
    buckets = DecadeBuckets(
        base=base if base is not None else VIEW_HOUR_BASE_X,
        n_buckets=(
            n_buckets if n_buckets is not None else len(SIZE_BUCKET_FRACTIONS)
        ),
    )
    for publisher, count in counts.items():
        daily = vh.get(publisher, 0.0) / window_days
        buckets.add(publisher, count, daily)
    return buckets


def bucket_table(buckets: DecadeBuckets) -> List[Dict[str, object]]:
    """Printable rows: bucket label, % publishers, count breakdown."""
    return buckets.stacked_rows()
