"""View-duration analysis (Fig 8) and the views/view-hours contrast.

Fig 8 plots, per platform, the CDF of individual view duration (hours,
truncated at 1 on the x-axis): only ~24% of mobile and browser views
exceed 0.2 hours while >60% of set-top views do — the mechanism behind
set-top boxes leading by view-hours (Fig 6a) but not by views (Fig 6c).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.constants import Platform
from repro.core.dimensions import PlatformDimension
from repro.entities.device import DeviceRegistry
from repro.errors import AnalysisError
from repro.stats.cdf import ECDF
from repro.telemetry.dataset import Dataset


def duration_cdfs(
    dataset: Dataset, registry: Optional[DeviceRegistry] = None
) -> Dict[Platform, ECDF]:
    """Views-weighted duration CDF per platform for a dataset slice."""
    dimension = PlatformDimension(registry)
    samples: Dict[Platform, list] = {p: [] for p in Platform}
    weights: Dict[Platform, list] = {p: [] for p in Platform}
    for record in dataset:
        values = dimension.values(record)
        if not values:
            continue
        platform = values[0]
        samples[platform].append(record.view_duration_hours)
        weights[platform].append(record.views)
    cdfs: Dict[Platform, ECDF] = {}
    for platform in Platform:
        if samples[platform]:
            cdfs[platform] = ECDF(samples[platform], weights[platform])
    if not cdfs:
        raise AnalysisError("no classifiable records for duration CDFs")
    return cdfs


def long_view_fractions(
    dataset: Dataset,
    threshold_hours: float = 0.2,
    registry: Optional[DeviceRegistry] = None,
) -> Dict[Platform, float]:
    """P[view duration > threshold] per platform (§4.2's 0.2 h cut)."""
    if threshold_hours < 0:
        raise AnalysisError("threshold must be non-negative")
    return {
        platform: cdf.survival(threshold_hours)
        for platform, cdf in duration_cdfs(dataset, registry).items()
    }


def median_durations(
    dataset: Dataset, registry: Optional[DeviceRegistry] = None
) -> Dict[Platform, float]:
    """Median individual view duration per platform, in hours."""
    return {
        platform: cdf.median()
        for platform, cdf in duration_cdfs(dataset, registry).items()
    }
