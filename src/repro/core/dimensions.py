"""The three management-plane dimensions, extracted from view records.

§4 characterizes packaging (streaming protocol, inferred from the
manifest extension in the URL), device playback (platform and
within-platform family, inferred from the device model), and content
distribution (CDNs, listed per view).  A :class:`Dimension` maps a
record onto its value(s) in one of those vocabularies; every prevalence
and count analysis is generic over a dimension.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

from repro.constants import Platform, Protocol
from repro.entities.device import DeviceRegistry, default_registry
from repro.packaging.manifest.detect import detect_protocol_or_none
from repro.telemetry.columnar import ColumnKey
from repro.telemetry.records import ViewRecord

#: (value, fraction) pairs: fraction splits the record's view-hours and
#: views across multiple values (only CDNs are multi-valued).
WeightedValues = Tuple[Tuple[object, float], ...]


class Dimension(abc.ABC):
    """One management-plane dimension of §4."""

    name: str

    #: Vectorization hook: single-valued dimensions publish a
    #: :class:`ColumnKey` so the prevalence/count analyses can group by
    #: interned codes on the dataset's column store.  ``None`` (the
    #: multi-valued CDN dimension, or a non-default device registry)
    #: keeps the generic row-at-a-time path.
    column_key: Optional[ColumnKey] = None

    @abc.abstractmethod
    def values(self, record: ViewRecord) -> Tuple[object, ...]:
        """The record's value(s); empty when the record is out of scope."""

    def weighted_values(self, record: ViewRecord) -> WeightedValues:
        """Values with view-hour split fractions (sums to 1 in scope)."""
        values = self.values(record)
        if not values:
            return ()
        fraction = 1.0 / len(values)
        return tuple((value, fraction) for value in values)

    def _single_value(self, record: ViewRecord) -> Optional[object]:
        """The record's sole value, or None out of scope (ColumnKey fn)."""
        values = self.values(record)
        return values[0] if values else None


class ProtocolDimension(Dimension):
    """Streaming protocol, inferred from the URL (Table 1, §3).

    ``http_only`` restricts to HTTP adaptive protocols, which is how the
    paper runs everything past the opening RTMP numbers (§4.1).
    """

    name = "protocol"

    def __init__(self, http_only: bool = True) -> None:
        self.http_only = http_only
        self.column_key = ColumnKey(
            "protocol:http" if http_only else "protocol:all",
            self._single_value,
        )

    def values(self, record: ViewRecord) -> Tuple[object, ...]:
        protocol = detect_protocol_or_none(record.url)
        if protocol is None:
            return ()
        if self.http_only and not protocol.is_http_adaptive:
            return ()
        return (protocol,)


class PlatformDimension(Dimension):
    """Playback platform, classified from the device model (§4.2)."""

    name = "platform"

    def __init__(self, registry: Optional[DeviceRegistry] = None) -> None:
        self._registry = registry or default_registry()
        if registry is None:
            self.column_key = ColumnKey("platform", self._single_value)

    def values(self, record: ViewRecord) -> Tuple[object, ...]:
        if record.device_model not in self._registry:
            return ()
        return (self._registry.platform_of(record.device_model),)


class FamilyDimension(Dimension):
    """Within-platform device family (Fig 10): browser player
    technology, mobile OS, set-top family, and so on."""

    def __init__(
        self,
        platform: Platform,
        registry: Optional[DeviceRegistry] = None,
    ) -> None:
        self.platform = platform
        self.name = f"family:{platform.value}"
        self._registry = registry or default_registry()
        if registry is None:
            self.column_key = ColumnKey(self.name, self._single_value)

    def values(self, record: ViewRecord) -> Tuple[object, ...]:
        if record.device_model not in self._registry:
            return ()
        device = self._registry.lookup(record.device_model)
        if device.platform is not self.platform:
            return ()
        return (device.family,)


class CdnDimension(Dimension):
    """CDN(s) that delivered the view (§4.3).

    Multi-CDN views split their view-hours evenly across the CDNs
    listed, so CDN shares still sum to 100%.
    """

    name = "cdn"

    def values(self, record: ViewRecord) -> Tuple[object, ...]:
        return tuple(record.cdn_names)


def record_protocol(record: ViewRecord) -> Optional[Protocol]:
    """Protocol of one record, or None when undetectable."""
    return detect_protocol_or_none(record.url)


#: Named derived column for the detected protocol (RTMP included);
#: shares its interned codes with ``ProtocolDimension(http_only=False)``.
PROTOCOL_COLUMN = ColumnKey("protocol:all", record_protocol)
