"""Per-publisher protocol share CDFs (Fig 4).

Among publishers that *support* a protocol, what fraction of each
publisher's view-hours does that protocol carry?  The paper's contrast:
half of HLS supporters put >=85% of their view-hours on HLS, while half
of DASH supporters put <=20% on DASH — DASH support is broad but
shallow outside the few large drivers.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.constants import Protocol
from repro.core.dimensions import ProtocolDimension
from repro.errors import AnalysisError
from repro.stats.cdf import ECDF
from repro.telemetry.dataset import Dataset


def per_publisher_protocol_share(
    dataset: Dataset, protocol: Protocol
) -> Dict[str, float]:
    """protocol's % of each supporting publisher's HTTP view-hours."""
    dimension = ProtocolDimension(http_only=True)
    by_protocol: Dict[str, float] = defaultdict(float)
    totals: Dict[str, float] = defaultdict(float)
    for record in dataset:
        values = dimension.values(record)
        if not values:
            continue
        totals[record.publisher_id] += record.view_hours
        if values[0] is protocol:
            by_protocol[record.publisher_id] += record.view_hours
    shares = {
        publisher: 100.0 * by_protocol[publisher] / totals[publisher]
        for publisher in by_protocol
        if totals[publisher] > 0
    }
    if not shares:
        raise AnalysisError(
            f"no publisher uses {protocol.display_name} in this slice"
        )
    return shares


def share_cdf(dataset: Dataset, protocol: Protocol) -> ECDF:
    """CDF across supporting publishers of the protocol's share (Fig 4)."""
    return ECDF(per_publisher_protocol_share(dataset, protocol).values())


def supporter_medians(dataset: Dataset) -> Dict[Protocol, float]:
    """Median per-publisher share for each HTTP protocol with support."""
    medians: Dict[Protocol, float] = {}
    for protocol in (
        Protocol.HLS,
        Protocol.DASH,
        Protocol.MSS,
        Protocol.HDS,
    ):
        try:
            medians[protocol] = share_cdf(dataset, protocol).median()
        except AnalysisError:
            continue
    return medians
