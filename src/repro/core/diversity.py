"""Diversity metrics for management planes (extension).

The paper's conclusion calls for "new complexity metrics" beyond the
three of §5.  The §5 metrics count *support* (how many protocols/
platforms/CDNs a publisher touches); the metrics here measure how
*evenly* a publisher's traffic spreads over those choices — a publisher
that supports four protocols but serves 99% of view-hours over one of
them runs a much simpler plane than its support count suggests.

Two standard ecology/economics measures are used:

* **Shannon entropy** ``H = -sum(p_i log p_i)`` of the view-hour
  distribution over a dimension's values, and its exponential
  ``exp(H)`` — the *effective number of choices* (equals the plain
  count when traffic is uniform, approaches 1 when concentrated).
* **Herfindahl-Hirschman concentration** ``HHI = sum(p_i^2)`` with its
  inverse-participation effective count ``1/HHI``.

The combined *management surface index* multiplies the effective
choice counts of the three dimensions — an evenness-aware analogue of
the §5 combinations metric.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.dimensions import (
    CdnDimension,
    Dimension,
    PlatformDimension,
    ProtocolDimension,
)
from repro.errors import AnalysisError
from repro.stats.regression import LogLogFit, fit_loglog
from repro.telemetry.dataset import Dataset


def shannon_entropy(shares: Mapping[object, float]) -> float:
    """Shannon entropy (nats) of a share distribution.

    ``shares`` need not be normalized; zero/negative entries are
    rejected as they indicate an upstream accounting bug.
    """
    total = sum(shares.values())
    if total <= 0:
        raise AnalysisError("shares must have positive total")
    entropy = 0.0
    for value in shares.values():
        if value < 0:
            raise AnalysisError("shares must be non-negative")
        if value == 0:
            continue
        p = value / total
        entropy -= p * math.log(p)
    return entropy


def effective_choices(shares: Mapping[object, float]) -> float:
    """exp(entropy): the effective number of evenly-used choices."""
    return math.exp(shannon_entropy(shares))


def herfindahl(shares: Mapping[object, float]) -> float:
    """Herfindahl-Hirschman concentration index in (0, 1]."""
    total = sum(shares.values())
    if total <= 0:
        raise AnalysisError("shares must have positive total")
    return sum((value / total) ** 2 for value in shares.values())


@dataclass(frozen=True)
class DiversityProfile:
    """Evenness-aware diversity of one publisher's management plane."""

    publisher_id: str
    view_hours: float
    protocol_effective: float
    platform_effective: float
    cdn_effective: float
    protocol_count: int
    platform_count: int
    cdn_count: int

    @property
    def surface_index(self) -> float:
        """Product of effective choice counts across the dimensions."""
        return (
            self.protocol_effective
            * self.platform_effective
            * self.cdn_effective
        )

    @property
    def count_surface(self) -> int:
        """The §5-style raw-count analogue, for comparison."""
        return self.protocol_count * self.platform_count * self.cdn_count

    @property
    def evenness_ratio(self) -> float:
        """surface_index / count_surface in (0, 1].

        1 means traffic is spread perfectly evenly over everything the
        publisher supports; small values mean support breadth overstates
        the live complexity.
        """
        return self.surface_index / self.count_surface


def _share_map(
    dataset: Dataset, dimension: Dimension
) -> Dict[str, Dict[object, float]]:
    shares: Dict[str, Dict[object, float]] = defaultdict(
        lambda: defaultdict(float)
    )
    for record in dataset:
        for value, fraction in dimension.weighted_values(record):
            shares[record.publisher_id][value] += (
                record.view_hours * fraction
            )
    return shares


def publisher_diversity(dataset: Dataset) -> Dict[str, DiversityProfile]:
    """Diversity profiles for every publisher in a dataset slice."""
    protocol_shares = _share_map(dataset, ProtocolDimension())
    platform_shares = _share_map(dataset, PlatformDimension())
    cdn_shares = _share_map(dataset, CdnDimension())
    vh = dataset.publisher_view_hours()
    profiles: Dict[str, DiversityProfile] = {}
    for publisher_id in vh:
        protocols = protocol_shares.get(publisher_id)
        platforms = platform_shares.get(publisher_id)
        cdns = cdn_shares.get(publisher_id)
        if not protocols or not platforms or not cdns:
            continue  # publisher unclassifiable in some dimension
        profiles[publisher_id] = DiversityProfile(
            publisher_id=publisher_id,
            view_hours=vh[publisher_id],
            protocol_effective=effective_choices(protocols),
            platform_effective=effective_choices(platforms),
            cdn_effective=effective_choices(cdns),
            protocol_count=len(protocols),
            platform_count=len(platforms),
            cdn_count=len(cdns),
        )
    if not profiles:
        raise AnalysisError("no classifiable publishers in dataset")
    return profiles


@dataclass(frozen=True)
class DiversityFits:
    """Log-log fits of the diversity metrics against view-hours."""

    surface_index: LogLogFit
    count_surface: LogLogFit

    @property
    def evenness_gap(self) -> float:
        """Count-based slope minus evenness-aware slope (per decade).

        Positive means raw support counts grow faster with size than
        actually-exercised diversity — i.e. large publishers' extra
        choices are partly long-tail, which tempers the §5 complexity
        story.
        """
        return (
            self.count_surface.per_decade_factor
            - self.surface_index.per_decade_factor
        )


def fit_diversity(
    profiles: Mapping[str, DiversityProfile]
) -> DiversityFits:
    """Fit both surface measures against publisher view-hours."""
    rows = [p for p in profiles.values() if p.view_hours > 0]
    if len(rows) < 3:
        raise AnalysisError("need at least three publishers to fit")
    vh = [p.view_hours for p in rows]
    return DiversityFits(
        surface_index=fit_loglog(vh, [p.surface_index for p in rows]),
        count_surface=fit_loglog(
            vh, [float(p.count_surface) for p in rows]
        ),
    )


def mean_evenness(
    profiles: Mapping[str, DiversityProfile],
    weight_by_view_hours: bool = False,
) -> float:
    """Average evenness ratio across publishers."""
    rows = list(profiles.values())
    if not rows:
        raise AnalysisError("no profiles")
    if not weight_by_view_hours:
        return sum(p.evenness_ratio for p in rows) / len(rows)
    total = sum(p.view_hours for p in rows)
    if total <= 0:
        raise AnalysisError("no view-hours")
    return sum(p.evenness_ratio * p.view_hours for p in rows) / total
