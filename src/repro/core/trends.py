"""Longitudinal count averages (Figs 3c, 9c, 12c).

Per snapshot: the plain average of per-publisher counts and the
view-hour-weighted average.  The weighted curve sitting above the plain
one is the paper's evidence that larger publishers support more
instances of every dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Dict, List

from repro.core.counts import publisher_counts
from repro.core.dimensions import Dimension
from repro.errors import AnalysisError
from repro.stats.weighted import weighted_mean
from repro.telemetry.dataset import Dataset


@dataclass(frozen=True)
class TrendPoint:
    """One snapshot of a Figs 3c/9c/12c curve pair."""

    snapshot: date
    average: float
    weighted_average: float
    publishers: int


def count_trend(
    dataset: Dataset, dimension: Dimension
) -> List[TrendPoint]:
    """Average and VH-weighted average counts over all snapshots."""
    if len(dataset) == 0:
        raise AnalysisError("dataset is empty")
    points: List[TrendPoint] = []
    for snapshot in dataset.snapshots():
        snap = dataset.for_snapshot(snapshot)
        counts = publisher_counts(snap, dimension)
        vh = snap.publisher_view_hours()
        publishers = sorted(counts)
        values = [float(counts[p]) for p in publishers]
        weights = [vh.get(p, 0.0) for p in publishers]
        points.append(
            TrendPoint(
                snapshot=snapshot,
                average=weighted_mean(values),
                weighted_average=weighted_mean(values, weights),
                publishers=len(publishers),
            )
        )
    return points


def trend_growth(points: List[TrendPoint]) -> Dict[str, float]:
    """Relative growth of both curves, first snapshot to last.

    §4.2 reports platform-count averages grew 48% (plain) and 37%
    (weighted) over the study.
    """
    if len(points) < 2:
        raise AnalysisError("need at least two snapshots for growth")
    first, last = points[0], points[-1]
    if first.average <= 0 or first.weighted_average <= 0:
        raise AnalysisError("zero initial average")
    return {
        "average_growth_pct": 100.0 * (last.average / first.average - 1.0),
        "weighted_growth_pct": 100.0
        * (last.weighted_average / first.weighted_average - 1.0),
    }
