"""§4.4-style summary statistics across all three dimensions.

The roll-up numbers the paper quotes in prose: weighted-average choice
counts, the share of view-hours behind multi-protocol / multi-CDN /
multi-platform publishers, RTMP's decline, top-5 CDN concentration, and
the live-vs-VoD CDN segregation percentages of §4.3.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Set

from repro.constants import ContentType, Protocol
from repro.core.counts import count_distribution, share_with_count_above
from repro.core.dimensions import (
    PROTOCOL_COLUMN,
    CdnDimension,
    Dimension,
    PlatformDimension,
    ProtocolDimension,
    record_protocol,
)
from repro.core.trends import count_trend
from repro.errors import AnalysisError
from repro.telemetry.dataset import Dataset


@dataclass(frozen=True)
class DimensionSummary:
    """Headline stats for one dimension in the latest snapshot."""

    name: str
    average_count: float
    weighted_average_count: float
    pct_publishers_multi: float
    pct_view_hours_multi: float


def summarize_dimension(
    dataset: Dataset, dimension: Dimension
) -> DimensionSummary:
    """Latest-snapshot summary of one dimension."""
    latest = dataset.latest()
    rows = count_distribution(latest, dimension)
    multi = share_with_count_above(rows, 1)
    trend = count_trend(latest, dimension)[-1]
    return DimensionSummary(
        name=dimension.name,
        average_count=trend.average,
        weighted_average_count=trend.weighted_average,
        pct_publishers_multi=multi["percent_publishers"],
        pct_view_hours_multi=multi["percent_view_hours"],
    )


def headline_summary(dataset: Dataset) -> Dict[str, DimensionSummary]:
    """§4.4's three-dimension roll-up (protocols, platforms, CDNs)."""
    return {
        "protocols": summarize_dimension(dataset, ProtocolDimension()),
        "platforms": summarize_dimension(dataset, PlatformDimension()),
        "cdns": summarize_dimension(dataset, CdnDimension()),
    }


def rtmp_share(dataset: Dataset) -> Dict[str, float]:
    """RTMP view-hour share at the first and last snapshots (§4.1)."""
    shares: Dict[str, float] = {}
    for which, snapshot in (
        ("first", dataset.first_snapshot()),
        ("latest", dataset.latest_snapshot()),
    ):
        snap = dataset.for_snapshot(snapshot)
        if snap.columnar:
            by_protocol = snap.view_hours_by(PROTOCOL_COLUMN)
            total = sum(by_protocol.values())
            rtmp = by_protocol.get(Protocol.RTMP, 0.0)
        else:
            total = 0.0
            rtmp = 0.0
            for record in snap:
                protocol = record_protocol(record)
                if protocol is None:
                    continue
                total += record.view_hours
                if protocol is Protocol.RTMP:
                    rtmp += record.view_hours
        if total <= 0:
            raise AnalysisError(f"no classifiable records at {snapshot}")
        shares[which] = 100.0 * rtmp / total
    return shares


def top_cdn_concentration(dataset: Dataset, n: int = 5) -> float:
    """% of view-hours served by the top-n CDNs (§4.3: >93% for n=5)."""
    totals: Dict[str, float] = defaultdict(float)
    grand_total = 0.0
    for record in dataset:
        share = record.view_hours / len(record.cdn_names)
        grand_total += record.view_hours
        for cdn in record.cdn_names:
            totals[cdn] += share
    if grand_total <= 0:
        raise AnalysisError("no view-hours in dataset")
    top = sorted(totals.values(), reverse=True)[:n]
    return 100.0 * sum(top) / grand_total


@dataclass(frozen=True)
class ContentSplitStats:
    """§4.3 live-vs-VoD CDN segregation among multi-CDN publishers."""

    eligible_publishers: int
    pct_with_vod_only_cdn: float
    pct_with_live_only_cdn: float


def live_vod_cdn_segregation(dataset: Dataset) -> ContentSplitStats:
    """Of publishers using multiple CDNs and serving both live and VoD,
    the share keeping at least one CDN exclusive to one content type."""
    cdn_types: Dict[str, Dict[str, Set[ContentType]]] = defaultdict(
        lambda: defaultdict(set)
    )
    for record in dataset:
        for cdn in record.cdn_names:
            cdn_types[record.publisher_id][cdn].add(record.content_type)
    eligible = 0
    vod_only = 0
    live_only = 0
    for publisher, per_cdn in cdn_types.items():
        served: Set[ContentType] = set()
        for types in per_cdn.values():
            served |= types
        if len(per_cdn) < 2 or served != {ContentType.LIVE, ContentType.VOD}:
            continue
        eligible += 1
        if any(types == {ContentType.VOD} for types in per_cdn.values()):
            vod_only += 1
        if any(types == {ContentType.LIVE} for types in per_cdn.values()):
            live_only += 1
    if eligible == 0:
        raise AnalysisError("no multi-CDN live+VoD publishers observed")
    return ContentSplitStats(
        eligible_publishers=eligible,
        pct_with_vod_only_cdn=100.0 * vod_only / eligible,
        pct_with_live_only_cdn=100.0 * live_only / eligible,
    )
