"""Per-publisher instance counts (Figs 3a, 9a, 12a).

For a snapshot, how many distinct values of a dimension does each
publisher use, and — the paper's signature move — what share of all
publishers versus what share of all *view-hours* does each count level
represent?
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Set

from repro.core.dimensions import Dimension
from repro.errors import AnalysisError
from repro.telemetry.dataset import Dataset


def publisher_counts(dataset: Dataset, dimension: Dimension) -> Dict[str, int]:
    """Distinct dimension values per publisher in a dataset slice."""
    if dimension.column_key is not None and dataset.columnar:
        counts = dataset.values_per_publisher(dimension.column_key)
        if not counts:
            raise AnalysisError(
                f"no records in scope for dimension {dimension.name!r}"
            )
        return counts
    values_by_publisher: Dict[str, Set[object]] = defaultdict(set)
    for record in dataset:
        for value in dimension.values(record):
            values_by_publisher[record.publisher_id].add(value)
    if not values_by_publisher:
        raise AnalysisError(
            f"no records in scope for dimension {dimension.name!r}"
        )
    return {
        publisher: len(values)
        for publisher, values in values_by_publisher.items()
    }


@dataclass(frozen=True)
class CountRow:
    """One bar group of Figs 3a/9a/12a."""

    count: int
    percent_publishers: float
    percent_view_hours: float
    publishers: int


def count_distribution(
    dataset: Dataset, dimension: Dimension
) -> List[CountRow]:
    """Distribution of per-publisher counts, by publishers and view-hours.

    Publishers with no in-scope records are excluded (matching the
    paper, which can only count what it observes).
    """
    counts = publisher_counts(dataset, dimension)
    vh = dataset.publisher_view_hours()
    total_vh = sum(vh.get(p, 0.0) for p in counts)
    if total_vh <= 0:
        raise AnalysisError("no view-hours among counted publishers")
    by_count: Dict[int, List[str]] = defaultdict(list)
    for publisher, count in counts.items():
        by_count[count].append(publisher)
    rows: List[CountRow] = []
    for count in sorted(by_count):
        publishers = by_count[count]
        rows.append(
            CountRow(
                count=count,
                percent_publishers=100.0 * len(publishers) / len(counts),
                percent_view_hours=100.0
                * sum(vh.get(p, 0.0) for p in publishers)
                / total_vh,
                publishers=len(publishers),
            )
        )
    return rows


def share_with_count_above(
    rows: List[CountRow], threshold: int
) -> Dict[str, float]:
    """% publishers / % view-hours with count > threshold.

    Backs §4.4 claims like "more than 90% of view-hours can be
    attributed to publishers who support more than 1 protocol".
    """
    if not rows:
        raise AnalysisError("empty count distribution")
    return {
        "percent_publishers": sum(
            r.percent_publishers for r in rows if r.count > threshold
        ),
        "percent_view_hours": sum(
            r.percent_view_hours for r in rows if r.count > threshold
        ),
    }
