"""CDN origin storage redundancy (§6, Fig 18).

Builds origin servers for the case-study catalogue — the owner and two
syndicators push their own encodings to the CDNs they use — and
evaluates three models: bitrate dedup within a 5% tolerance, within a
10% tolerance, and integrated syndication (everyone served from the
owner's copies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.delivery.origin import OriginServer
from repro.errors import AnalysisError
from repro.synthesis import calibration as cal
from repro.synthesis.syndication import CaseStudy
from repro.units import bytes_to_tb


@dataclass(frozen=True)
class StorageSavings:
    """One bar group of Fig 18, for one common CDN."""

    cdn_name: str
    total_tb: float
    saved_tb_5pct: float
    saved_pct_5pct: float
    saved_tb_10pct: float
    saved_pct_10pct: float
    saved_tb_integrated: float
    saved_pct_integrated: float


def build_case_origins(case_study: CaseStudy) -> Dict[str, OriginServer]:
    """Push the case-study catalogue to every CDN its publishers use.

    The owner pushes to the common CDNs; each storage-study syndicator
    pushes to the common CDNs plus its own extra CDN, mirroring the
    paper's placement (owner on A+B; one syndicator also on C, the
    other also on D).
    """
    origins: Dict[str, OriginServer] = {}

    def origin(cdn_name: str) -> OriginServer:
        if cdn_name not in origins:
            origins[cdn_name] = OriginServer(cdn_name)
        return origins[cdn_name]

    owner_ladder = case_study.ladder("O")
    for cdn_name in cal.STORAGE_STUDY_COMMON_CDNS + cal.OWNER_EXTRA_CDNS:
        origin(cdn_name).push_catalogue(
            case_study.owner_id, case_study.catalogue, owner_ladder
        )
    for label in cal.STORAGE_STUDY_SYNDICATORS:
        publisher_id = case_study.publisher_id(label)
        ladder = case_study.ladder(label)
        extra = cal.SYNDICATOR_EXTRA_CDNS.get(label, ())
        for cdn_name in cal.STORAGE_STUDY_COMMON_CDNS + extra:
            origin(cdn_name).push_catalogue(
                publisher_id, case_study.catalogue, ladder
            )
    return origins


def savings_for_cdn(
    origin: OriginServer, owner_id: str
) -> StorageSavings:
    """Evaluate the three Fig 18 models against one origin."""
    total = origin.total_bytes()
    if total <= 0:
        raise AnalysisError(f"origin {origin.cdn_name} is empty")
    saved_5, pct_5 = origin.savings(0.05)
    saved_10, pct_10 = origin.savings(0.10)
    saved_int, pct_int = origin.integrated_savings(owner_id)
    return StorageSavings(
        cdn_name=origin.cdn_name,
        total_tb=bytes_to_tb(total),
        saved_tb_5pct=bytes_to_tb(saved_5),
        saved_pct_5pct=pct_5,
        saved_tb_10pct=bytes_to_tb(saved_10),
        saved_pct_10pct=pct_10,
        saved_tb_integrated=bytes_to_tb(saved_int),
        saved_pct_integrated=pct_int,
    )


def figure18(case_study: CaseStudy) -> List[StorageSavings]:
    """Fig 18 rows: savings on each common CDN."""
    origins = build_case_origins(case_study)
    return [
        savings_for_cdn(origins[cdn_name], case_study.owner_id)
        for cdn_name in cal.STORAGE_STUDY_COMMON_CDNS
    ]


def tolerance_sweep(
    case_study: CaseStudy,
    tolerances: Sequence[float] = (0.0, 0.02, 0.05, 0.08, 0.10, 0.15, 0.20),
) -> List[Tuple[float, float]]:
    """Ablation: savings percentage as a function of dedup tolerance.

    Extends Fig 18 beyond the paper's two tolerance points; evaluated
    on the first common CDN (identical content sits on both).
    """
    origins = build_case_origins(case_study)
    origin = origins[cal.STORAGE_STUDY_COMMON_CDNS[0]]
    sweep: List[Tuple[float, float]] = []
    for tolerance in tolerances:
        _, pct = origin.savings(tolerance)
        sweep.append((tolerance, pct))
    return sweep
