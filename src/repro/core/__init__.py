"""The paper's analyses (§§4-6): the core contribution of the library.

Every figure and table in the paper's evaluation maps onto a function
here; ``repro.figures`` indexes them by figure id.
"""

from repro.core.dimensions import (
    CdnDimension,
    Dimension,
    FamilyDimension,
    PlatformDimension,
    ProtocolDimension,
    record_protocol,
)
from repro.core.prevalence import (
    publisher_support_series,
    view_hour_share_series,
    first_last,
    share_at,
)
from repro.core.counts import (
    CountRow,
    count_distribution,
    publisher_counts,
    share_with_count_above,
)
from repro.core.buckets import bucketed_counts, bucket_table
from repro.core.trends import TrendPoint, count_trend, trend_growth
from repro.core.durations import (
    duration_cdfs,
    long_view_fractions,
    median_durations,
)
from repro.core.protocol_share import (
    per_publisher_protocol_share,
    share_cdf,
    supporter_medians,
)
from repro.core.complexity import (
    ComplexityFits,
    ComplexityMetrics,
    fit_complexity,
    max_unique_sdks,
    publisher_complexity,
)
from repro.core.syndication import (
    LadderDivergence,
    QoeComparison,
    ladder_divergence,
    ladders_for_video,
    prevalence_summary,
    qoe_comparison,
    syndication_cdf,
    syndicator_fraction_per_owner,
)
from repro.core.storage import (
    StorageSavings,
    build_case_origins,
    figure18,
    savings_for_cdn,
    tolerance_sweep,
)
from repro.core.summary import (
    ContentSplitStats,
    DimensionSummary,
    headline_summary,
    live_vod_cdn_segregation,
    rtmp_share,
    summarize_dimension,
    top_cdn_concentration,
)
from repro.core.diversity import (
    DiversityFits,
    DiversityProfile,
    effective_choices,
    fit_diversity,
    herfindahl,
    mean_evenness,
    publisher_diversity,
    shannon_entropy,
)
from repro.core.integrated import (
    AccountingEntry,
    QoeProjection,
    accounting_report,
    integrated_qoe_projection,
    owner_share_of_cdn,
    project_all_syndicators,
)
from repro.core.report import format_table, format_comparison

__all__ = [
    "CdnDimension",
    "Dimension",
    "FamilyDimension",
    "PlatformDimension",
    "ProtocolDimension",
    "record_protocol",
    "publisher_support_series",
    "view_hour_share_series",
    "first_last",
    "share_at",
    "CountRow",
    "count_distribution",
    "publisher_counts",
    "share_with_count_above",
    "bucketed_counts",
    "bucket_table",
    "TrendPoint",
    "count_trend",
    "trend_growth",
    "duration_cdfs",
    "long_view_fractions",
    "median_durations",
    "per_publisher_protocol_share",
    "share_cdf",
    "supporter_medians",
    "ComplexityFits",
    "ComplexityMetrics",
    "fit_complexity",
    "max_unique_sdks",
    "publisher_complexity",
    "LadderDivergence",
    "QoeComparison",
    "ladder_divergence",
    "ladders_for_video",
    "prevalence_summary",
    "qoe_comparison",
    "syndication_cdf",
    "syndicator_fraction_per_owner",
    "StorageSavings",
    "build_case_origins",
    "figure18",
    "savings_for_cdn",
    "tolerance_sweep",
    "ContentSplitStats",
    "DimensionSummary",
    "headline_summary",
    "live_vod_cdn_segregation",
    "rtmp_share",
    "summarize_dimension",
    "top_cdn_concentration",
    "format_table",
    "format_comparison",
    "DiversityFits",
    "DiversityProfile",
    "effective_choices",
    "fit_diversity",
    "herfindahl",
    "mean_evenness",
    "publisher_diversity",
    "shannon_entropy",
    "AccountingEntry",
    "QoeProjection",
    "accounting_report",
    "integrated_qoe_projection",
    "owner_share_of_cdn",
    "project_all_syndicators",
]
