"""Plain-text table rendering for figure/benchmark output.

The benchmark harness prints each figure as rows; these helpers format
them the way the paper's tables read, without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] = (),
    float_digits: int = 2,
) -> str:
    """Render rows of dicts as an aligned text table."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(cols)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(r))
        for r in rendered
    )
    return f"{header}\n{rule}\n{body}"


def format_comparison(
    title: str, pairs: Mapping[str, Sequence[float]]
) -> str:
    """Render 'metric: paper vs measured' lines for EXPERIMENTS-style
    output.  Each value is a (paper, measured) pair."""
    lines = [title]
    width = max((len(k) for k in pairs), default=0)
    for key, (paper_value, measured) in pairs.items():
        lines.append(
            f"  {key.ljust(width)}  paper={paper_value:<10.3f}"
            f" measured={measured:.3f}"
        )
    return "\n".join(lines)


def cdf_rows(
    xs: Iterable[float], fs: Iterable[float], x_label: str = "x"
) -> List[Dict[str, object]]:
    """Turn CDF (x, F) series into printable rows."""
    return [
        {x_label: float(x), "cdf": float(f)} for x, f in zip(xs, fs)
    ]
