"""Small AST helpers shared by the rule pack."""

from __future__ import annotations

import ast
from typing import Optional, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None.

    Call nodes are not traversed: ``foo().bar`` yields None, because a
    chain broken by a call is no longer a static module reference.
    """
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def name_tail(dotted: str, n: int = 2) -> Tuple[str, ...]:
    """The last ``n`` components of a dotted name."""
    return tuple(dotted.split(".")[-n:])


def is_float_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def call_has_arguments(node: ast.Call) -> bool:
    return bool(node.args or node.keywords)
