"""The replint rule pack.

Importing this package registers every rule with the registry.  One
module per invariant family:

- :mod:`determinism` — RPL001 unseeded randomness, RPL002 wall-clock
- :mod:`handlers` — RPL003 broad exception handlers
- :mod:`numerics` — RPL004 float-literal equality
- :mod:`unit_suffixes` — RPL005 conflicting unit suffixes
- :mod:`ordering` — RPL006 set-iteration order dependence
- :mod:`obs_hygiene` — RPL007 obs-layer bypass in instrumented modules
- :mod:`prints` — RPL008 bare ``print()`` in shipped library code
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (imports register the rules)
    determinism,
    handlers,
    numerics,
    obs_hygiene,
    ordering,
    prints,
    unit_suffixes,
)
