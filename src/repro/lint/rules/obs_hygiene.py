"""RPL007: instrumented modules must speak through ``repro.obs``.

The observability layer only stays deterministic and silenceable if it
is the *single* door to the wall clock and to ad-hoc output.  A stray
``time.monotonic()`` bypasses the injectable :class:`repro.obs.clock.
Clock` (fake clocks in tests stop working); a stray ``print()``
bypasses the structured JSON logger (events lose their span id and
seed, and can't be switched off).  This rule keeps both out of the
modules the obs layer instruments.

``repro/obs/clock.py`` is the one legal door to :mod:`time` and is
exempt by construction.  Referencing a time function without calling
it (``clock: Callable = time.monotonic``) stays legal everywhere —
that *is* the injection pattern.
"""

from __future__ import annotations

import ast

from repro.lint.registry import BaseRule, rule
from repro.lint.rules.common import dotted_name

# Monotonic/wall clock calls that must route through obs.clock.  The
# wall-clock pair overlaps RPL002 on purpose: inside instrumented
# modules the fix is different (use the injected Clock), so the rule
# points at the right door.
_TIME_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    }
)


@rule
class ObsBypass(BaseRule):
    """RPL007: no direct clock reads or prints in instrumented modules."""

    code = "RPL007"
    description = "clock read or print() bypasses the obs layer"
    scope = (
        "*/repro/obs/*",
        "*/repro/figures.py",
        "*/repro/resilience.py",
        "*/repro/delivery/multicdn.py",
        "*/repro/telemetry/ingest.py",
        "*/repro/telemetry/backend.py",
        "*/repro/synthesis/generator.py",
    )
    exempt = ("*/repro/obs/clock.py",)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        if dotted == "print":
            self.report(
                node,
                "print() in an instrumented module bypasses the "
                "structured logger; use obs.emit(event, **fields) so "
                "the event carries the span id and seed",
            )
            return
        if dotted in _TIME_CALLS:
            self.report(
                node,
                f"{dotted}() bypasses the injectable obs clock; take a "
                "Clock (repro.obs.clock) as a parameter and call "
                ".now() so tests can substitute a FakeClock",
            )
