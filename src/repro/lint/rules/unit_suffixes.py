"""RPL005: unit-suffix discipline in arithmetic.

The codebase names quantities with unit suffixes (``bitrate_kbps``,
``playing_seconds``, ``view_duration_hours``) and centralizes
conversions in :mod:`repro.units`.  Adding or subtracting two
identifiers whose suffixes name *different* units is therefore almost
certainly a missing conversion — the exact bug class the paper's
mixed-unit figures (kbps bitrates, TB storage, view-hours) invite.
Multiplication and division are never flagged: they legitimately
change units (``kbps * seconds`` is a storage footprint).
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.registry import BaseRule, rule

# Suffix -> canonical unit.  Aliases map to one canon so `_s + _seconds`
# is fine while `_ms + _s` is a missing conversion.  The families mirror
# repro.units: time (ms/s/min/h), rates (bps/kbps/mbps), storage (bytes/tb).
_SUFFIX_UNITS = {
    "ms": "ms",
    "msec": "ms",
    "msecs": "ms",
    "millis": "ms",
    "s": "s",
    "sec": "s",
    "secs": "s",
    "second": "s",
    "seconds": "s",
    "min": "min",
    "mins": "min",
    "minute": "min",
    "minutes": "min",
    "h": "h",
    "hr": "h",
    "hrs": "h",
    "hour": "h",
    "hours": "h",
    "bps": "bps",
    "kbps": "kbps",
    "mbps": "mbps",
    "byte": "bytes",
    "bytes": "bytes",
    "tb": "tb",
}

# Whole identifiers that *are* a unit name (no underscore needed); the
# short time tokens are excluded — `s` and `h` are ordinary variables.
_BARE_UNIT_NAMES = frozenset({"bps", "kbps", "mbps"})


def _suffix_unit(name: str) -> Optional[str]:
    lowered = name.lower()
    if lowered in _BARE_UNIT_NAMES:
        return _SUFFIX_UNITS[lowered]
    if "_" not in lowered:
        return None
    suffix = lowered.rsplit("_", 1)[1]
    return _SUFFIX_UNITS.get(suffix)


def _unit_of(node: ast.AST) -> Optional[str]:
    """The unit an expression carries, where statically inferable."""
    if isinstance(node, ast.Name):
        return _suffix_unit(node.id)
    if isinstance(node, ast.Attribute):
        return _suffix_unit(node.attr)
    if isinstance(node, ast.Subscript):
        return _unit_of(node.value)
    if isinstance(node, ast.UnaryOp):
        return _unit_of(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = _unit_of(node.left)
        right = _unit_of(node.right)
        # A consistent sum carries its operands' unit; a mixed one is
        # already reported at the inner node, so stay silent here.
        if left is not None and left == right:
            return left
        return None
    return None


@rule
class ConflictingUnitSuffixes(BaseRule):
    """RPL005: ``+``/``-`` across identifiers with different unit suffixes.

    Both sides must carry a *recognized* suffix for a finding — an
    unsuffixed name yields no evidence either way, which keeps the
    rule quiet on generic arithmetic.  Scale conversions belong in
    :mod:`repro.units`; the fix is to convert one operand explicitly.
    """

    code = "RPL005"
    description = "arithmetic mixes identifiers with conflicting unit suffixes"

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        self._check(node, node.left, node.right)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        self._check(node, node.target, node.value)

    def _check(self, node: ast.AST, left: ast.AST, right: ast.AST) -> None:
        left_unit = _unit_of(left)
        right_unit = _unit_of(right)
        if left_unit is None or right_unit is None:
            return
        if left_unit != right_unit:
            self.report(
                node,
                f"adding/subtracting {left_unit!r} and {right_unit!r} "
                "quantities without a conversion; route one operand "
                "through repro.units",
            )
