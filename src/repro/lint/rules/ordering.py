"""RPL006: set iteration order must not reach ordered figure output.

Python sets iterate in hash order, which varies with insertion history
and (for strings, across interpreter configs) hashing — so a figure
row list built by iterating a set is not reproducible even under a
fixed seed.  The rule is scoped to the figure/experiment layer, where
every emitted row sequence is part of the artifact.

The check is syntactic: it flags expressions that are *visibly* sets
(literals, ``set(...)``/``frozenset(...)`` calls) flowing into ordered
constructs — ``for`` loops, comprehensions, ``list``/``tuple``/
``enumerate`` conversions, and ``str.join``.  Wrapping in ``sorted()``
(or any explicit ordering) silences it.  Sets reaching loops through
variables are out of reach for a single-file AST pass; the scoped
modules are written to sort at the point of iteration, which this
rule locks in.
"""

from __future__ import annotations

import ast

from repro.lint.registry import BaseRule, rule

_ORDERED_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@rule
class SetIterationOrder(BaseRule):
    """RPL006: iterating a set into ordered output in figure code."""

    code = "RPL006"
    description = "set iteration order leaks into ordered figure output"
    scope = ("*/figures.py", "*/experiments.py")

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self.report(
                node,
                "for-loop iterates a set in hash order; wrap the "
                "iterable in sorted() to pin row order",
            )

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_generators(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_generators(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_generators(node)

    def _check_generators(self, node: ast.AST) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            if _is_set_expr(gen.iter):
                self.report(
                    node,
                    "comprehension iterates a set in hash order; wrap "
                    "the iterable in sorted()",
                )

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _ORDERED_CONSUMERS
            and node.args
            and _is_set_expr(node.args[0])
        ):
            self.report(
                node,
                f"{node.func.id}() over a set preserves hash order; "
                "use sorted() to pin element order",
            )
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
            and _is_set_expr(node.args[0])
        ):
            self.report(
                node,
                "str.join over a set emits elements in hash order; "
                "join sorted(...) instead",
            )
