"""RPL003: broad exception handlers erode the error taxonomy.

PR 1 introduced a typed hierarchy under :mod:`repro.errors` precisely
so callers can absorb *library* failures without also absorbing
``TypeError``/``KeyError`` programming bugs.  A ``except Exception``
that swallows (does not re-raise) undoes that: the next refactor's
bug disappears into a quarantine queue instead of failing a test.
"""

from __future__ import annotations

import ast

from repro.lint.registry import BaseRule, rule

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _names_in_handler_type(node: ast.AST) -> list:
    """The exception class names a handler catches (Name nodes only)."""
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Tuple):
        names = []
        for elt in node.elts:
            names.extend(_names_in_handler_type(elt))
        return names
    return []


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains a bare ``raise``.

    ``raise SomethingElse(...)`` does not count: translating into a
    *typed* error is legitimate, but then the handler should catch the
    specific type it translates, not ``Exception``.  A bare ``raise``
    propagates the original, so the breadth is harmless (e.g. a
    record-metrics-then-rethrow wrapper).
    """
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


@rule
class BroadExceptionHandler(BaseRule):
    """RPL003: bare/broad except clauses must re-raise.

    Flags ``except:`` and ``except (Base)Exception`` handlers with no
    bare ``raise`` in their body.  The fix is almost always to catch
    the :mod:`repro.errors` type (or stdlib type) the code actually
    expects — the two seed-era offenders absorbed ``ValueError`` and
    operational transport failures respectively.
    """

    code = "RPL003"
    description = "broad exception handler that does not re-raise"

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            if not _reraises(node):
                self.report(
                    node,
                    "bare 'except:' swallows every error including "
                    "KeyboardInterrupt; catch a specific repro.errors "
                    "type or re-raise",
                )
            return
        broad = [
            name
            for name in _names_in_handler_type(node.type)
            if name in _BROAD_NAMES
        ]
        if broad and not _reraises(node):
            self.report(
                node,
                f"'except {broad[0]}' absorbs programming errors along "
                "with operational ones; narrow it to the repro.errors "
                "(or stdlib) types this code actually expects",
            )
