"""RPL008: no bare ``print()`` in shipped library code.

A ``print`` in library code is output the caller cannot capture,
silence, or attribute: it lands on whatever stdout the process happens
to own, carries no event name, span id, or seed, and disappears from
any machine-readable record of the run.  Everything the library wants
to say must go through :func:`repro.obs.emit` (or the module logger it
wraps) so the message is structured, switchable, and replayable.

The CLI module is exempt — printing *is* its job — and RPL007 already
polices the instrumented modules with a more specific message; this
rule widens the net to all of ``src/``.  (Docstrings showing
``print(...)`` in examples are untouched: the rule matches AST call
nodes, not text.)
"""

from __future__ import annotations

import ast

from repro.lint.registry import BaseRule, rule
from repro.lint.rules.common import dotted_name
from repro.lint.rules.obs_hygiene import ObsBypass


@rule
class BarePrint(BaseRule):
    """RPL008: bare print() in library code bypasses repro.obs logs."""

    code = "RPL008"
    description = "bare print() in library code; route through repro.obs"
    scope = ("src/*",)
    # One door per file: inside the instrumented modules RPL007 flags
    # the same print() with its more specific remedy, so they are
    # carved out of this rule rather than double-reported.
    exempt = ("*/cli.py",) + ObsBypass.scope

    def visit_Call(self, node: ast.Call) -> None:
        if dotted_name(node.func) == "print":
            self.report(
                node,
                "bare print() in library code cannot be captured, "
                "silenced, or attributed to a run; use "
                "obs.emit(event, **fields) so the message is "
                "structured and carries the span id and seed",
            )
