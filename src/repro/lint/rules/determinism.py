"""RPL001/RPL002: every figure must be replayable from a seed.

The paper's 27-month Conviva dataset is replaced by seeded synthesis,
so bit-for-bit reproducibility *is* the dataset.  Two things break it:
randomness that does not flow from an explicit seed, and wall-clock
reads that leak the run time into analysis output.
"""

from __future__ import annotations

import ast

from repro.lint.registry import BaseRule, rule
from repro.lint.rules.common import call_has_arguments, dotted_name, name_tail

# Module-level stdlib random functions share one hidden global RNG.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

# Legacy numpy global-state API (np.random.<fn> without a Generator).
_NP_GLOBAL_FNS = frozenset(
    {
        "beta",
        "binomial",
        "choice",
        "exponential",
        "gamma",
        "lognormal",
        "normal",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "seed",
        "shuffle",
        "uniform",
        "zipf",
    }
)

# Constructors that must receive an explicit seed argument.
_SEED_REQUIRED = frozenset(
    {
        "random.Random",
        "np.random.default_rng",
        "numpy.random.default_rng",
        "np.random.PCG64",
        "numpy.random.PCG64",
        "np.random.MT19937",
        "numpy.random.MT19937",
        "np.random.RandomState",
        "numpy.random.RandomState",
    }
)


@rule
class UnseededRandomness(BaseRule):
    """RPL001: randomness in generation paths must be explicitly seeded.

    Applies to the synthesis pipeline, fault injection, and playback
    simulation — the three places where hidden RNG state would corrupt
    a figure silently.  Both failure shapes are flagged: constructing
    an RNG without a seed argument, and calling module-level
    ``random.*`` / legacy ``np.random.*`` functions that draw from
    interpreter-global state no seed parameter can reach.
    """

    code = "RPL001"
    description = "unseeded or global-state randomness in a seeded path"
    scope = (
        "*/synthesis/*",
        "*/telemetry/faults.py",
        "*/playback/*",
    )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        if dotted in _SEED_REQUIRED:
            if not call_has_arguments(node):
                self.report(
                    node,
                    f"{dotted}() constructed without an explicit seed; "
                    "thread a seed from the public API",
                )
            return
        parts = dotted.split(".")
        if len(parts) == 2 and parts[0] == "random":
            if parts[1] in _GLOBAL_RANDOM_FNS:
                self.report(
                    node,
                    f"module-level random.{parts[1]}() draws from the "
                    "hidden global RNG; use a seeded random.Random "
                    "instance threaded through the call chain",
                )
            return
        if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            if parts[2] in _NP_GLOBAL_FNS:
                self.report(
                    node,
                    f"legacy {parts[0]}.random.{parts[2]}() uses numpy's "
                    "global state; draw from a seeded "
                    "np.random.Generator instead",
                )


@rule
class WallClockInAnalysis(BaseRule):
    """RPL002: analysis code must not read the wall clock.

    ``time.time()`` / ``datetime.now()`` make output depend on *when*
    the code ran.  CLI entry points, benchmarks, and examples are
    exempt — timestamping a report or timing a run is their job.
    ``time.monotonic``/``perf_counter`` stay legal everywhere: they
    measure intervals and never appear in figure values, and the
    resilience primitives inject them as overridable clocks.
    """

    code = "RPL002"
    description = "wall-clock read in an analysis path"
    exempt = (
        "*/cli.py",
        "benchmarks/*",
        "*/benchmarks/*",
        "examples/*",
        "*/examples/*",
    )

    _TIME_CALLS = frozenset({"time.time", "time.time_ns"})
    _DATETIME_TAILS = frozenset(
        {
            ("datetime", "now"),
            ("datetime", "utcnow"),
            ("date", "today"),
        }
    )

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        if dotted in self._TIME_CALLS:
            self.report(
                node,
                f"{dotted}() reads the wall clock; inject a clock "
                "callable (the resilience primitives show the pattern) "
                "or derive times from snapshot dates",
            )
            return
        if name_tail(dotted) in self._DATETIME_TAILS:
            self.report(
                node,
                f"{dotted}() captures the run's wall-clock date; "
                "analysis output must derive only from the dataset "
                "and seed",
            )
