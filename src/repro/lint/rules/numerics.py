"""RPL004: float-literal equality in the statistics kernels.

``sxx == 0.0`` is true only when cancellation is *exactly* total; a
near-degenerate input (all x within one ulp) sails past the guard and
detonates in the division a line later.  The statistics modules back
every figure, so they get the strict rule: compare floats with
``math.isclose`` or an explicit epsilon.
"""

from __future__ import annotations

import ast

from repro.lint.registry import BaseRule, rule
from repro.lint.rules.common import is_float_literal


@rule
class FloatLiteralEquality(BaseRule):
    """RPL004: ``==`` / ``!=`` against a float literal in ``stats/``.

    Integer literals are deliberately not flagged — ``n == 0`` on a
    count is exact — and neither are comparisons between two names,
    where the author may have arranged exact propagation.  The float
    literal is the reliable tell of a degenerate-case guard that
    should be an epsilon test.
    """

    code = "RPL004"
    description = "float-literal equality comparison in statistics code"
    scope = ("*/stats/*",)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            literal = next(
                (n for n in (left, right) if is_float_literal(n)), None
            )
            if literal is not None:
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                self.report(
                    node,
                    f"float equality '{symbol} {literal.value!r}' is "
                    "brittle under rounding; use math.isclose or an "
                    "explicit epsilon guard",
                )
