"""Baseline suppression: freeze pre-existing findings, fail on new ones.

A baseline is a JSON file mapping finding fingerprints (see
:meth:`repro.lint.findings.Finding.fingerprint`) to a human-readable
record of what was suppressed.  Fingerprints hash the file path, rule
code, stripped source line, and an occurrence index — never the line
number — so edits elsewhere in a file do not invalidate the baseline,
while *touching the offending line itself* does (which is the point:
if you edit the line, fix it).

The repo policy set by this PR is an **empty** baseline — every
finding in the initial rule pack was fixed at the source — but the
mechanism ships so future rules can land without a flag-day cleanup.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Tuple

from repro.lint.findings import Finding
from repro.lint.registry import LintRuleError

BASELINE_VERSION = 1


def assign_occurrences(findings: Iterable[Finding]) -> List[Finding]:
    """Number identical (path, code, source_line) findings in order.

    Two violations of the same rule on byte-identical lines in one
    file would otherwise share a fingerprint; the occurrence index
    keeps them distinct so baselining one does not hide the other.
    """
    counters: Dict[Tuple[str, str, str], int] = {}
    out: List[Finding] = []
    for f in sorted(findings, key=lambda f: f.sort_key()):
        key = (f.path, f.code, f.source_line)
        index = counters.get(key, 0)
        counters[key] = index + 1
        if f.occurrence != index:
            f = Finding(
                path=f.path,
                line=f.line,
                col=f.col,
                code=f.code,
                severity=f.severity,
                message=f.message,
                source_line=f.source_line,
                occurrence=index,
            )
        out.append(f)
    return out


def load_baseline(path: str) -> Dict[str, dict]:
    """Fingerprint -> record map; empty when the file does not exist."""
    if not os.path.isfile(path):
        return {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise LintRuleError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or "suppressions" not in data:
        raise LintRuleError(
            f"baseline {path} is not a replint baseline file"
        )
    suppressions = data["suppressions"]
    if not isinstance(suppressions, dict):
        raise LintRuleError(f"baseline {path} has a malformed suppressions map")
    return suppressions


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Snapshot ``findings`` as the new baseline; returns the count."""
    numbered = assign_occurrences(findings)
    suppressions = {
        f.fingerprint(): {
            "path": f.path,
            "code": f.code,
            "source_line": f.source_line,
            "occurrence": f.occurrence,
        }
        for f in numbered
    }
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "replint baseline: pre-existing findings suppressed from CI. "
            "Regenerate with `repro lint --baseline`; prefer fixing over "
            "baselining."
        ),
        "suppressions": suppressions,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(suppressions)


def split_by_baseline(
    findings: Iterable[Finding], baseline: Dict[str, dict]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition into (new, baselined) against a suppression map."""
    fresh: List[Finding] = []
    suppressed: List[Finding] = []
    for f in assign_occurrences(findings):
        if f.fingerprint() in baseline:
            suppressed.append(f)
        else:
            fresh.append(f)
    return fresh, suppressed
