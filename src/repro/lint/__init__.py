"""replint: repo-specific static analysis for reproduction invariants.

The test suite can verify values; it cannot verify *habits*.  Three
habits keep this reproduction honest — every figure derives from an
explicit seed, quantities never silently change units, and failures
surface through the :mod:`repro.errors` taxonomy rather than vanishing
into broad handlers.  ``replint`` walks the AST of every source file
and enforces those habits at commit time with eight rules:

========  ==========================================================
RPL001    unseeded randomness in synthesis/fault/playback paths
RPL002    wall-clock reads (``time.time``/``datetime.now``) in
          analysis code
RPL003    bare/broad exception handlers that do not re-raise
RPL004    ``==``/``!=`` against float literals in ``stats/``
RPL005    arithmetic mixing identifiers with conflicting unit
          suffixes (``_ms`` vs ``_s``, ``_kbps`` vs ``_bps``, ...)
RPL006    iterating a ``set`` into ordered output in figure code
RPL007    clock read or ``print()`` bypassing :mod:`repro.obs` in
          instrumented modules
RPL008    bare ``print()`` anywhere in shipped library code
========  ==========================================================

The whole-program RPL1xx family (call-graph + dataflow analyses)
lives in :mod:`repro.analysis` and reports through the same findings,
pragma, and baseline machinery.

Public API::

    from repro.lint import run_lint, LintConfig

    result = run_lint(["src"], config=LintConfig.load("."))
    for finding in result.findings:
        print(finding.format())

Configuration lives in ``pyproject.toml`` under ``[tool.replint]``;
pre-existing findings can be frozen into a baseline file so CI fails
only on *new* violations (``repro lint --baseline`` writes it).
"""

from __future__ import annotations

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.config import LintConfig
from repro.lint.engine import LintResult, lint_source, run_lint
from repro.lint.findings import Finding, Severity
from repro.lint.registry import all_rules, get_rule, rule

# Importing the rule pack registers every rule with the registry.
from repro.lint import rules as _rules  # noqa: F401  (import for side effect)

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "Severity",
    "all_rules",
    "get_rule",
    "lint_source",
    "load_baseline",
    "rule",
    "run_lint",
    "write_baseline",
]
