"""Finding reporters: human text and machine JSON.

The JSON shape is stable for CI consumption: a ``findings`` array of
:meth:`Finding.to_dict` objects plus a ``summary`` object, so a
workflow can both fail on ``summary.new_errors > 0`` and archive the
full finding list as an artifact.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.findings import Severity


def format_text(result: LintResult) -> str:
    lines = [f.format() for f in result.findings]
    error_count = len(result.errors)
    warning_count = len(result.findings) - error_count
    summary = (
        f"{result.files_checked} files checked: "
        f"{error_count} error(s), {warning_count} warning(s)"
    )
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    if not result.findings and not result.baselined:
        summary += " — clean"
    lines.append(summary)
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    payload = {
        "findings": [f.to_dict() for f in result.findings],
        "baselined": [f.to_dict() for f in result.baselined],
        "summary": {
            "files_checked": result.files_checked,
            "new_findings": len(result.findings),
            "new_errors": sum(
                1
                for f in result.findings
                if f.severity is Severity.ERROR
            ),
            "baselined": len(result.baselined),
            "ok": result.ok,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
