"""``pyproject.toml``-driven configuration for replint.

The config lives under ``[tool.replint]``::

    [tool.replint]
    paths = ["src"]
    exclude = ["*/__pycache__/*"]
    baseline = ".replint-baseline.json"
    disable = []                      # rule codes to turn off globally

    [tool.replint.rules.RPL002]
    exempt = ["*/cli.py", "*/benchmarks/*", "*/examples/*"]

Per-rule tables may override ``scope`` (replaces the rule's default
glob list), add ``exempt`` patterns, or set ``severity``.  Python 3.11+
reads the file with :mod:`tomllib`; on older interpreters a minimal
built-in parser handles the subset of TOML this config uses, so the
linter works everywhere the package does without new dependencies.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.lint.findings import Severity
from repro.lint.registry import LintRuleError

try:  # Python 3.11+
    import tomllib as _toml
except ModuleNotFoundError:  # pragma: no cover - depends on interpreter
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ModuleNotFoundError:
        _toml = None  # type: ignore[assignment]

DEFAULT_BASELINE = ".replint-baseline.json"
DEFAULT_ANALYSIS_BASELINE = ".repgraph-baseline.json"
DEFAULT_EXCLUDE = ("*/__pycache__/*", "*/.git/*", "*/build/*", "*/dist/*")


def _parse_toml_subset(text: str) -> Dict[str, object]:
    """Minimal TOML reader for the ``[tool.replint*]`` tables.

    Supports table headers, string/bool/int scalars, and single-line
    string arrays — exactly what the lint config uses.  Lines it cannot
    interpret are skipped rather than fatal, since this fallback only
    exists for interpreters without :mod:`tomllib`.
    """
    root: Dict[str, object] = {}
    current = root
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            current = root
            for part in line[1:-1].strip().strip('"').split("."):
                current = current.setdefault(part.strip(), {})  # type: ignore[assignment]
            continue
        if "=" not in line:
            continue
        key, _, value = line.partition("=")
        key = key.strip().strip('"')
        value = value.split("#", 1)[0].strip() if not value.strip().startswith("[") else value.strip()
        parsed = _parse_scalar_or_array(value)
        if parsed is not _SKIP:
            current[key] = parsed  # type: ignore[index]
    return root


_SKIP = object()


def _parse_scalar_or_array(value: str) -> object:
    value = value.strip()
    if value.startswith("[") and value.endswith("]"):
        inner = value[1:-1].strip()
        if not inner:
            return []
        return [
            _parse_scalar_or_array(item)
            for item in _split_array_items(inner)
        ]
    if value.startswith('"') and value.endswith('"') and len(value) >= 2:
        return value[1:-1]
    if value.startswith("'") and value.endswith("'") and len(value) >= 2:
        return value[1:-1]
    if value in ("true", "false"):
        return value == "true"
    try:
        return int(value)
    except ValueError:
        return _SKIP


def _split_array_items(inner: str) -> List[str]:
    items: List[str] = []
    depth = 0
    quote = ""
    start = 0
    for i, ch in enumerate(inner):
        if quote:
            if ch == quote:
                quote = ""
            continue
        if ch in "\"'":
            quote = ch
        elif ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == "," and depth == 0:
            items.append(inner[start:i])
            start = i + 1
    tail = inner[start:].strip()
    if tail:
        items.append(tail)
    return items


@dataclass
class RuleOverride:
    """Per-rule settings from ``[tool.replint.rules.<CODE>]``."""

    scope: Optional[List[str]] = None
    exempt: List[str] = field(default_factory=list)
    severity: Optional[Severity] = None


@dataclass
class LintConfig:
    """Resolved linter configuration."""

    root: str = "."
    paths: List[str] = field(default_factory=lambda: ["src"])
    exclude: List[str] = field(default_factory=lambda: list(DEFAULT_EXCLUDE))
    baseline_path: str = DEFAULT_BASELINE
    disabled: List[str] = field(default_factory=list)
    overrides: Dict[str, RuleOverride] = field(default_factory=dict)
    #: Whole-program analyzer defaults (``repro analyze``): analysis
    #: covers the shipped sources only and keeps its own baseline so
    #: per-file and whole-program suppressions never mix.
    analysis_paths: List[str] = field(default_factory=lambda: ["src"])
    analysis_baseline_path: str = DEFAULT_ANALYSIS_BASELINE

    def override_for(self, code: str) -> RuleOverride:
        return self.overrides.get(code, RuleOverride())

    def rule_enabled(self, code: str) -> bool:
        return code not in self.disabled

    @classmethod
    def load(cls, root: str = ".") -> "LintConfig":
        """Read ``pyproject.toml`` under ``root``; defaults if absent."""
        config = cls(root=root)
        pyproject = os.path.join(root, "pyproject.toml")
        if not os.path.isfile(pyproject):
            return config
        with open(pyproject, "rb") as fh:
            raw = fh.read()
        if _toml is not None:
            try:
                data = _toml.loads(raw.decode("utf-8"))
            except ValueError as exc:
                # TOMLDecodeError and UnicodeDecodeError both derive
                # from ValueError.
                raise LintRuleError(f"cannot parse {pyproject}: {exc}") from exc
        else:
            data = _parse_toml_subset(raw.decode("utf-8"))
        section = data.get("tool", {}).get("replint", {})
        if not isinstance(section, dict):
            return config
        config.paths = _str_list(section.get("paths"), config.paths)
        config.exclude = _str_list(section.get("exclude"), config.exclude)
        baseline = section.get("baseline")
        if isinstance(baseline, str) and baseline:
            config.baseline_path = baseline
        config.analysis_paths = _str_list(
            section.get("analysis_paths"), config.analysis_paths
        )
        analysis_baseline = section.get("analysis_baseline")
        if isinstance(analysis_baseline, str) and analysis_baseline:
            config.analysis_baseline_path = analysis_baseline
        config.disabled = _str_list(section.get("disable"), [])
        rules = section.get("rules", {})
        if isinstance(rules, dict):
            for code, table in rules.items():
                if not isinstance(table, dict):
                    continue
                override = RuleOverride()
                if "scope" in table:
                    override.scope = _str_list(table.get("scope"), [])
                override.exempt = _str_list(table.get("exempt"), [])
                severity = table.get("severity")
                if isinstance(severity, str):
                    try:
                        override.severity = Severity(severity)
                    except ValueError:
                        raise LintRuleError(
                            f"invalid severity {severity!r} for {code}"
                        ) from None
                config.overrides[code] = override
        return config


def _str_list(value: object, default: List[str]) -> List[str]:
    if isinstance(value, list) and all(isinstance(v, str) for v in value):
        return list(value)
    return list(default)
