"""Finding and severity types shared by every rule and reporter."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional


class Severity(Enum):
    """How seriously a finding should be treated.

    ``ERROR`` findings fail the build; ``WARNING`` findings are
    reported but never affect the exit code.  Every shipped rule
    defaults to ``ERROR`` — a determinism bug that only warns gets
    ignored until it has already corrupted a figure.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``source_line`` is the stripped text of the offending line; it is
    part of the identity used for baseline fingerprints so that
    unrelated edits (which shift line numbers) do not churn the
    baseline.  ``occurrence`` disambiguates identical lines within the
    same file.
    """

    path: str
    line: int
    col: int
    code: str
    severity: Severity
    message: str
    source_line: str = ""
    occurrence: int = 0

    def fingerprint(self) -> str:
        """Stable identity for baseline suppression (line-number free)."""
        raw = "|".join(
            (self.path, self.code, self.source_line, str(self.occurrence))
        )
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()

    def format(self) -> str:
        """``path:line:col: CODE message`` — the classic linter line."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "source_line": self.source_line,
            "fingerprint": self.fingerprint(),
        }

    def sort_key(self):
        return (self.path, self.line, self.col, self.code)


@dataclass
class FileFindings:
    """Mutable per-file accumulator used while rules run."""

    path: str
    findings: list = field(default_factory=list)
    parse_error: Optional[str] = None

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)
