"""Single-pass multi-rule AST visitor.

:class:`MultiRuleVisitor` walks a file's tree exactly once and fans
each node out to every rule that declared a ``visit_<NodeType>``
method for it.  This keeps lint time linear in file size regardless of
how many rules are enabled, which matters once the rule pack grows and
the linter runs on every commit.

The visitor also maintains a parent map so rules can look upward
(``parent_of``) — e.g. to check whether a ``set()`` call is already
wrapped in ``sorted()`` — without each rule re-walking the tree.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding
from repro.lint.registry import BaseRule

_VisitHandler = Tuple[BaseRule, Callable[[ast.AST], None]]


class MultiRuleVisitor:
    """Dispatch one AST walk to many rules.

    Handlers are discovered by introspection at construction: any
    method on a rule named ``visit_<NodeType>`` is invoked for nodes of
    exactly that type (no MRO walking — a rule that wants both
    ``FunctionDef`` and ``AsyncFunctionDef`` declares both, as with
    :class:`ast.NodeVisitor`).
    """

    def __init__(self, rules: Sequence[BaseRule]) -> None:
        self.rules = list(rules)
        self._handlers: Dict[str, List[_VisitHandler]] = {}
        for r in self.rules:
            for name in dir(r):
                if not name.startswith("visit_"):
                    continue
                handler = getattr(r, name)
                if not callable(handler):
                    continue
                node_name = name[len("visit_"):]
                self._handlers.setdefault(node_name, []).append((r, handler))
        self._parents: Dict[int, ast.AST] = {}

    # -- parent access --------------------------------------------------

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        """The direct parent of ``node`` in the current tree."""
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> List[ast.AST]:
        """Parents from nearest to the module root."""
        chain: List[ast.AST] = []
        current: Optional[ast.AST] = self.parent_of(node)
        while current is not None:
            chain.append(current)
            current = self.parent_of(current)
        return chain

    # -- the walk -------------------------------------------------------

    def run(
        self,
        tree: ast.AST,
        path: str,
        lines: Sequence[str],
        sink: Callable[[Finding], None],
    ) -> None:
        """Visit ``tree`` once, reporting findings through ``sink``."""
        self._parents = {}
        for r in self.rules:
            r.bind(path, lines, tree, sink)
            # Rules that need upward context get the shared parent map.
            r.visitor = self  # type: ignore[attr-defined]
        for r in self.rules:
            r.enter_file()
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node
        self._dispatch(tree)
        for r in self.rules:
            r.leave_file()

    def _dispatch(self, node: ast.AST) -> None:
        for _, handler in self._handlers.get(type(node).__name__, ()):
            handler(node)
        for child in ast.iter_child_nodes(node):
            self._dispatch(child)
