"""Rule base class and registry.

A rule is a class with a unique ``code`` (``RPLnnn``), a default
severity, a one-line description, and optional path scoping.  Rules
declare interest in AST node types by defining ``visit_<NodeType>``
methods — the visitor framework discovers them by introspection, so a
rule never subclasses :class:`ast.NodeVisitor` and the whole rule pack
runs in a single pass over each file's tree.

Registering is one decorator::

    @rule
    class NoFrobnication(BaseRule):
        code = "RPL042"
        description = "frobnication is non-deterministic"

        def visit_Call(self, node):
            ...
            self.report(node, "do not frobnicate here")
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.errors import ReproError
from repro.lint.findings import Finding, Severity


class LintRuleError(ReproError):
    """A rule or the lint configuration is malformed."""


class BaseRule:
    """Base class for all lint rules.

    Subclasses set the class attributes and implement ``visit_*``
    methods.  One instance is created per linted file; ``self.path``,
    ``self.lines`` and ``self.tree`` describe the file being visited
    and :meth:`report` records a finding at a node's location.

    ``scope`` is a tuple of ``fnmatch`` glob patterns; empty means the
    rule applies to every file.  ``exempt`` patterns carve files out of
    an otherwise matching scope (e.g. CLI entry points for the
    wall-clock rule).  Both can be overridden per-rule from
    ``pyproject.toml``.
    """

    code: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    scope: Tuple[str, ...] = ()
    exempt: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self.path: str = "<unknown>"
        self.lines: Sequence[str] = ()
        self.tree: Optional[ast.AST] = None
        self._sink: Optional[Callable[[Finding], None]] = None

    # -- lifecycle ------------------------------------------------------

    def bind(
        self,
        path: str,
        lines: Sequence[str],
        tree: ast.AST,
        sink: Callable[[Finding], None],
    ) -> None:
        """Attach this instance to one file before visiting starts."""
        self.path = path
        self.lines = lines
        self.tree = tree
        self._sink = sink

    def enter_file(self) -> None:
        """Hook called before the walk; override for per-file setup."""

    def leave_file(self) -> None:
        """Hook called after the walk; override for whole-file checks."""

    # -- reporting ------------------------------------------------------

    def report(self, node: ast.AST, message: str) -> None:
        if self._sink is None:
            raise LintRuleError(f"{self.code} reported outside a lint run")
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        text = ""
        if 1 <= line <= len(self.lines):
            text = self.lines[line - 1].strip()
        self._sink(
            Finding(
                path=self.path,
                line=line,
                col=col,
                code=self.code,
                severity=self.severity,
                message=message,
                source_line=text,
            )
        )

    # -- scoping --------------------------------------------------------

    @classmethod
    def applies_to(
        cls,
        path: str,
        scope: Optional[Sequence[str]] = None,
        exempt: Optional[Sequence[str]] = None,
    ) -> bool:
        """Whether this rule runs on ``path`` (posix-style, relative)."""
        effective_scope = tuple(scope) if scope is not None else cls.scope
        effective_exempt = tuple(exempt) if exempt is not None else cls.exempt
        norm = path.replace("\\", "/")
        for pattern in effective_exempt:
            if fnmatch.fnmatch(norm, pattern):
                return False
        if not effective_scope:
            return True
        return any(
            fnmatch.fnmatch(norm, pattern) for pattern in effective_scope
        )


_REGISTRY: Dict[str, Type[BaseRule]] = {}


def rule(cls: Type[BaseRule]) -> Type[BaseRule]:
    """Class decorator: register a rule under its ``code``."""
    if not cls.code:
        raise LintRuleError(f"{cls.__name__} has no rule code")
    if cls.code in _REGISTRY and _REGISTRY[cls.code] is not cls:
        raise LintRuleError(f"duplicate rule code {cls.code}")
    if not cls.description:
        raise LintRuleError(f"{cls.code} has no description")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Type[BaseRule]]:
    """Every registered rule class, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Type[BaseRule]:
    try:
        return _REGISTRY[code]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise LintRuleError(
            f"unknown rule code {code!r}; known: {known}"
        ) from None
