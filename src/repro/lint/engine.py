"""Lint orchestration: collect files, run rules, apply suppressions.

The engine is the only module that touches the filesystem.  Rules see
source text and an AST; tests lint in-memory fixtures through
:func:`lint_source` with a *pretend* path, which is how the paired
good/bad fixtures exercise path-scoped rules without temp files.

Suppression has three layers, applied in order:

1. rule scoping (a rule only runs where its invariant lives),
2. inline pragmas — ``# replint: disable=RPL003`` on the offending
   line (or ``disable`` with no codes to silence the line entirely),
3. the baseline file (see :mod:`repro.lint.baseline`).
"""

from __future__ import annotations

import ast
import fnmatch
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

from repro.lint.baseline import load_baseline, split_by_baseline
from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity
from repro.lint.registry import BaseRule, all_rules
from repro.lint.visitor import MultiRuleVisitor

PARSE_ERROR_CODE = "RPL000"

_PRAGMA_RE = re.compile(
    r"#\s*replint:\s*disable(?:=(?P<codes>[A-Za-z0-9_,\s]+))?"
)

_ALL_CODES = "__all__"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def pragma_map(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Line number -> codes disabled on that line.

    Public because the whole-program analyzer (:mod:`repro.analysis`)
    honors the same inline pragmas for its RPL1xx findings.
    """
    pragmas: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            pragmas[lineno] = {_ALL_CODES}
        else:
            pragmas[lineno] = {
                code.strip().upper()
                for code in codes.split(",")
                if code.strip()
            }
    return pragmas


def apply_pragmas(
    findings: Sequence[Finding], pragmas: Dict[int, Set[str]]
) -> List[Finding]:
    """Drop findings whose line disables their code (or all codes)."""
    if not pragmas:
        return list(findings)
    kept: List[Finding] = []
    for f in findings:
        disabled = pragmas.get(f.line, set())
        if _ALL_CODES in disabled or f.code in disabled:
            continue
        kept.append(f)
    return kept


def _rules_for(path: str, config: LintConfig) -> List[BaseRule]:
    """Instantiate every enabled rule whose scope covers ``path``."""
    instances: List[BaseRule] = []
    for cls in all_rules():
        if not config.rule_enabled(cls.code):
            continue
        override = config.override_for(cls.code)
        exempt = tuple(cls.exempt) + tuple(override.exempt)
        if not cls.applies_to(path, scope=override.scope, exempt=exempt):
            continue
        instance = cls()
        if override.severity is not None:
            instance.severity = override.severity
        instances.append(instance)
    return instances


def lint_source(
    source: str,
    path: str,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint one source string as if it lived at ``path``.

    Returns findings after scoping and pragma suppression (but before
    any baseline — baselines belong to whole-tree runs).
    """
    cfg = config or LintConfig()
    norm = path.replace("\\", "/")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=norm)
    except (SyntaxError, ValueError, RecursionError, MemoryError) as exc:
        # Not just SyntaxError: null bytes raise ValueError on some
        # interpreters, and pathologically nested expressions exhaust
        # the parser's recursion/memory limits.  One broken file must
        # become a structured finding, not kill the whole run.
        lineno = getattr(exc, "lineno", None) or 1
        offset = getattr(exc, "offset", None) or 1
        msg = getattr(exc, "msg", None) or str(exc) or type(exc).__name__
        text = getattr(exc, "text", None) or ""
        return [
            Finding(
                path=norm,
                line=lineno,
                col=offset - 1,
                code=PARSE_ERROR_CODE,
                severity=Severity.ERROR,
                message=f"file does not parse: {msg}",
                source_line=text.strip(),
            )
        ]
    rules = _rules_for(norm, cfg)
    if not rules:
        return []
    findings: List[Finding] = []
    visitor = MultiRuleVisitor(rules)
    visitor.run(tree, norm, lines, findings.append)
    findings = apply_pragmas(findings, pragma_map(lines))
    return sorted(findings, key=lambda f: f.sort_key())


def collect_files(
    paths: Sequence[str], config: LintConfig
) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` paths.

    Paths are returned relative to ``config.root`` in posix form —
    the same shape rule scopes, pragmas, and baselines key on.

    Every path is canonicalized (``realpath``) before deduplication,
    so overlapping arguments (``src src/repro``), ``..`` detours, and
    symlinked aliases of the same tree each lint a file exactly once
    instead of emitting duplicate findings.
    """
    root = os.path.realpath(os.path.abspath(config.root))
    seen: Set[str] = set()
    out: List[str] = []

    def add(abs_path: str) -> None:
        real = os.path.realpath(abs_path)
        if real in seen:
            return
        rel = os.path.relpath(real, root).replace(os.sep, "/")
        if any(fnmatch.fnmatch(rel, pat) for pat in config.exclude):
            return
        seen.add(real)
        out.append(rel)

    for path in paths:
        abs_path = (
            path if os.path.isabs(path) else os.path.join(root, path)
        )
        abs_path = os.path.realpath(abs_path)
        if os.path.isfile(abs_path):
            add(abs_path)
            continue
        for dirpath, dirnames, filenames in os.walk(abs_path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    add(os.path.join(dirpath, filename))
    return sorted(out)


def run_lint(
    paths: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
    use_baseline: bool = True,
    baseline: Optional[Union[str, Dict[str, dict]]] = None,
) -> LintResult:
    """Lint ``paths`` (default: the configured paths) under ``config``.

    ``baseline`` may be a suppression map or a file path; by default
    the configured baseline file is loaded when it exists.
    """
    cfg = config or LintConfig()
    targets = list(paths) if paths else list(cfg.paths)
    result = LintResult()
    all_findings: List[Finding] = []
    for rel in collect_files(targets, cfg):
        abs_path = os.path.join(os.path.abspath(cfg.root), rel)
        try:
            with open(abs_path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except (OSError, UnicodeDecodeError) as exc:
            all_findings.append(
                Finding(
                    path=rel,
                    line=1,
                    col=0,
                    code=PARSE_ERROR_CODE,
                    severity=Severity.ERROR,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        result.files_checked += 1
        all_findings.extend(lint_source(source, rel, cfg))
    suppressions: Dict[str, dict] = {}
    if isinstance(baseline, dict):
        suppressions = baseline
    elif isinstance(baseline, str):
        suppressions = load_baseline(baseline)
    elif use_baseline:
        baseline_file = os.path.join(cfg.root, cfg.baseline_path)
        suppressions = load_baseline(baseline_file)
    fresh, suppressed = split_by_baseline(all_findings, suppressions)
    result.findings = fresh
    result.baselined = suppressed
    return result
