"""Shared process-pool execution layer for every ``--jobs`` fan-out.

The pipeline's hot paths — snapshot synthesis, the figure suite, the
testkit oracle matrix, per-session playback — are all embarrassingly
parallel *if* three disciplines hold (DESIGN.md §14):

1. **Worker purity.**  A unit function must be a pure function of its
   pickled arguments; per-process memo caches are expressed as
   ``functools.lru_cache`` over pure builders (the form repgraph's
   RPL104 can prove safe), warmed in the parent before the pool is
   created so forked workers inherit them.
2. **Seed-spawn discipline.**  Any randomness consumed inside a unit
   derives from a per-unit ``np.random.SeedSequence`` child
   (:func:`spawn_streams`), never from a stream shared across units —
   RPL102's invariant — which is what makes a parallel run
   byte-identical to the serial one.
3. **Deterministic merge.**  Workers return what they recorded
   (results, metrics, spans, log lines); the parent folds captures
   back in unit-index order via :mod:`repro.obs.worker`, so
   observability-on output is independent of worker scheduling.

:func:`parallel_map` packages all three: ordered result collection
over a :class:`~concurrent.futures.ProcessPoolExecutor`, contiguous
chunking (so units that share a per-process cache land on one worker),
and per-worker obs capture.  ``jobs=1`` is an exact in-process serial
run — no pool, no pickling — which keeps the serial path the reference
implementation the differential oracles compare against.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

from repro import obs
from repro.errors import ParallelError
from repro.obs import worker as obs_worker

T = TypeVar("T")
U = TypeVar("U")


def parse_jobs(value: object) -> int:
    """Validate a ``--jobs``/``jobs=`` value into a positive int.

    The one shared gate for every fan-out entry point (CLI flags and
    library ``jobs=`` parameters alike): accepts positive integers and
    integer-valued strings, rejects everything else — booleans,
    floats, zero, negatives — with a :class:`ParallelError` naming the
    offending value instead of letting a bad count fall through to
    confusing pool behavior.
    """
    if isinstance(value, bool):
        raise ParallelError(f"jobs must be an integer, got {value!r}")
    if isinstance(value, str):
        try:
            value = int(value.strip())
        except ValueError:
            raise ParallelError(
                f"jobs must be an integer, got {value!r}"
            ) from None
    if not isinstance(value, int):
        raise ParallelError(f"jobs must be an integer, got {value!r}")
    if value < 1:
        raise ParallelError(f"jobs must be >= 1, got {value}")
    return value


def spawn_streams(seed: int, units: int) -> List[np.random.SeedSequence]:
    """One independent child ``SeedSequence`` per unit of work.

    The spawn happens once, in the parent, before any fan-out: child
    streams are a pure function of ``(seed, index)``, so a unit draws
    the same values no matter which worker runs it or in what order.
    """
    if units < 0:
        raise ParallelError(f"units must be >= 0, got {units}")
    return np.random.SeedSequence(seed).spawn(units)


def chunk_sizes_for(units: int, jobs: int) -> List[int]:
    """Contiguous chunk sizes balancing dispatch cost against skew.

    Aims for ~4 chunks per worker (cheap units amortize their pickling
    and capture overhead; stragglers can still be rebalanced), with
    every chunk a contiguous run of unit indices so ordered collection
    is a plain concatenation.  ``units <= jobs`` degenerates to one
    unit per chunk.
    """
    jobs = parse_jobs(jobs)
    if units < 0:
        raise ParallelError(f"units must be >= 0, got {units}")
    if units == 0:
        return []
    size = max(1, units // (jobs * 4))
    sizes = [size] * (units // size)
    remainder = units - size * len(sizes)
    for index in range(remainder):
        sizes[index % len(sizes)] += 1
    return sizes


def _chunk(items: List[T], sizes: Sequence[int]) -> List[List[T]]:
    if any(size < 1 for size in sizes):
        raise ParallelError("chunk sizes must all be >= 1")
    if sum(sizes) != len(items):
        raise ParallelError(
            f"chunk sizes sum to {sum(sizes)}, expected {len(items)}"
        )
    chunks: List[List[T]] = []
    start = 0
    for size in sizes:
        chunks.append(items[start:start + size])
        start += size
    return chunks


def _run_chunk(fn: Callable[[T], U], chunk: List[T]):
    """Worker entry point: run one contiguous chunk under capture.

    Returns ``(results, payload)`` where the payload carries every
    metric, span, and log line the chunk recorded (``None`` with
    observability off).  The capture makes the worker's use of the
    global obs context invisible to its caller: state flows in through
    the pickled arguments and out through the return value only.
    """
    return obs_worker.captured(lambda: [fn(item) for item in chunk])


def parallel_map(
    fn: Callable[[T], U],
    items: Sequence[T],
    jobs: int = 1,
    chunk_sizes: Optional[Sequence[int]] = None,
    label: str = "parallel.map",
) -> List[U]:
    """Map a pure worker over units on a process pool, in order.

    ``fn`` must be picklable (a module-level function, possibly
    wrapped in :func:`functools.partial`) and pure in the RPL104
    sense.  Results come back in unit-index order regardless of
    scheduling.  ``chunk_sizes`` overrides the default heuristic with
    explicit contiguous chunk lengths — callers use this to keep units
    that share a per-process cache (e.g. one scenario's oracle cells)
    on a single worker.  ``jobs=1`` runs everything in-process with no
    capture indirection: the serial path *is* the reference.
    """
    jobs = parse_jobs(jobs)
    items = list(items)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    sizes = (
        list(chunk_sizes)
        if chunk_sizes is not None
        else chunk_sizes_for(len(items), jobs)
    )
    chunks = _chunk(items, sizes)
    with obs.span(label, jobs=jobs, units=len(items)) as span:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            packed = list(pool.map(partial(_run_chunk, fn), chunks))
        obs_worker.absorb([payload for _, payload in packed])
        results: List[U] = []
        for chunk_results, _ in packed:
            results.extend(chunk_results)
        span.set(chunks=len(chunks))
    return results


__all__ = [
    "ParallelError",
    "chunk_sizes_for",
    "parallel_map",
    "parse_jobs",
    "spawn_streams",
]
