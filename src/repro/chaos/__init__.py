"""repro.chaos: deterministic cross-layer fault injection.

The chaos plane turns "does the pipeline degrade gracefully?" into a
checked, versioned artifact: a :class:`~repro.chaos.plan.FaultPlan`
declares what breaks where and when; the layer injectors execute it
against the *real* components; degradation contracts assert what
graceful means; and the runner folds everything into a deterministic
:class:`~repro.chaos.runner.DegradationReport`.

Importing this package also loads the scenario zoo
(:mod:`repro.chaos.zoo`), which registers its scenarios, perturbations,
and degradation contracts as a side effect — see the import at the
bottom of this module.
"""

from repro.chaos.contracts import (
    ContractCheck,
    ContractOutcome,
    DegradationContract,
    contract,
    contract_names,
    contracts_for,
    get_contract,
    run_contract,
)
from repro.chaos.injectors import (
    BreakerTransition,
    DeliveryChaosResult,
    IngestChaosResult,
    ManifestChaosResult,
    PoisonEvent,
    TelemetryInjection,
    inject_ingest_pressure,
    inject_telemetry,
    run_delivery_chaos,
    run_ingest_chaos,
    run_manifest_chaos,
)
from repro.chaos.plan import (
    LAYER_KINDS,
    PLAN_VERSION,
    RECOVERABLE_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    Layer,
    Window,
)
from repro.chaos.runner import (
    DEGRADATION_REPORT_VERSION,
    ChaosRun,
    DegradationReport,
    ScenarioChaosReport,
    chaos_scenario_names,
    run_chaos,
    run_chaos_scenario,
)

__all__ = [
    "LAYER_KINDS",
    "PLAN_VERSION",
    "RECOVERABLE_KINDS",
    "DEGRADATION_REPORT_VERSION",
    "BreakerTransition",
    "ChaosRun",
    "ContractCheck",
    "ContractOutcome",
    "DegradationContract",
    "DegradationReport",
    "DeliveryChaosResult",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "IngestChaosResult",
    "Layer",
    "ManifestChaosResult",
    "PoisonEvent",
    "ScenarioChaosReport",
    "TelemetryInjection",
    "Window",
    "chaos_scenario_names",
    "contract",
    "contract_names",
    "contracts_for",
    "get_contract",
    "inject_ingest_pressure",
    "inject_telemetry",
    "run_chaos",
    "run_chaos_scenario",
    "run_contract",
    "run_delivery_chaos",
    "run_ingest_chaos",
    "run_manifest_chaos",
]

# Load the scenario zoo last: it needs every name above plus a fully
# initialized repro.testkit.scenario.  When repro.testkit is imported
# first, its own trailing zoo import lands here and resolves via
# sys.modules without re-executing anything.
from repro.chaos import zoo as _zoo  # noqa: E402,F401
