"""The FaultPlan DSL: declarative, versioned cross-layer fault plans.

A management plane degrades along four independent axes — the telemetry
transport loses and mangles events, CDNs go dark regionally, manifest
payloads arrive truncated, and the ingest tier takes quarantine storms.
A :class:`FaultPlan` declares a campaign over those axes as a list of
:class:`FaultSpec` entries (fault kind x layer x window x intensity),
serialized to versioned JSON so a chaos run is a reviewable artifact
rather than an ad-hoc script.

Windows are fractions of *injected time*: each layer interprets
``[start, end)`` against its own timeline (event index for telemetry
and ingest, call index for delivery, document index for manifests), so
one plan composes across layers without unit fights.  Every random
draw descends from ``plan.seed`` plus the spec's position, which makes
two runs of the same plan byte-identical.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.errors import ChaosError

#: Schema version of the FaultPlan JSON payload; bump on change.
PLAN_VERSION = 1


class Layer(str, Enum):
    """Pipeline layer a fault is injected into."""

    TELEMETRY = "telemetry"  # event streams entering sessionization
    DELIVERY = "delivery"  # per-CDN fetch paths (broker + failover)
    MANIFEST = "manifest"  # manifest payloads entering detect/parse
    INGEST = "ingest"  # pressure on the ingestion pipeline itself


class FaultKind(str, Enum):
    """What the injector does inside its window."""

    # -- telemetry transport ------------------------------------------
    DROP = "drop"  # events silently lost
    DUPLICATE = "duplicate"  # events delivered twice
    REORDER_START = "reorder-start"  # SessionStart delayed past beats
    CORRUPT = "corrupt"  # truncated/negative/crossed payloads
    # -- CDN delivery --------------------------------------------------
    OUTAGE = "outage"  # target CDN fails every fetch
    LATENCY = "latency"  # target CDN throughput degrades
    # -- manifest fetch ------------------------------------------------
    TRUNCATE = "truncate"  # payload cut off mid-document
    MALFORM = "malform"  # payload characters mangled
    # -- ingest tier ---------------------------------------------------
    QUARANTINE_STORM = "quarantine-storm"  # burst of poisoned events
    ORPHAN_FLOOD = "orphan-flood"  # dead-letter/reorder-buffer pressure


#: Which kinds are legal at which layer.
LAYER_KINDS: Mapping[Layer, FrozenSet[FaultKind]] = {
    Layer.TELEMETRY: frozenset(
        {
            FaultKind.DROP,
            FaultKind.DUPLICATE,
            FaultKind.REORDER_START,
            FaultKind.CORRUPT,
        }
    ),
    Layer.DELIVERY: frozenset({FaultKind.OUTAGE, FaultKind.LATENCY}),
    Layer.MANIFEST: frozenset({FaultKind.TRUNCATE, FaultKind.MALFORM}),
    Layer.INGEST: frozenset(
        {FaultKind.QUARANTINE_STORM, FaultKind.ORPHAN_FLOOD}
    ),
}

#: Faults the pipeline is contractually able to absorb with ZERO output
#: delta: duplicates dedup away (seq numbers, repeated starts/ends),
#: delayed starts replay from the reorder buffer in arrival order, and
#: delivery degradation fails over without touching the dataset.  The
#: chaos-recovery differential oracle is built on this projection.
RECOVERABLE_KINDS: FrozenSet[FaultKind] = frozenset(
    {
        FaultKind.DUPLICATE,
        FaultKind.REORDER_START,
        FaultKind.OUTAGE,
        FaultKind.LATENCY,
    }
)


@dataclass(frozen=True)
class Window:
    """A half-open ``[start, end)`` slice of injected time, as fractions."""

    start: float = 0.0
    end: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start < self.end <= 1.0:
            raise ChaosError(
                f"window must satisfy 0 <= start < end <= 1, got "
                f"[{self.start}, {self.end})"
            )

    def indices(self, n: int) -> Tuple[int, int]:
        """The ``[i0, i1)`` index range this window covers in a
        timeline of ``n`` ticks (i1 > i0 whenever n > 0)."""
        if n <= 0:
            return (0, 0)
        i0 = min(int(math.floor(self.start * n)), n - 1)
        i1 = max(int(math.ceil(self.end * n)), i0 + 1)
        return (i0, min(i1, n))

    def contains_tick(self, index: int, n: int) -> bool:
        i0, i1 = self.indices(n)
        return i0 <= index < i1

    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class FaultSpec:
    """One fault campaign entry: kind x layer x window x intensity.

    ``intensity`` is the per-tick probability (or severity fraction for
    :attr:`FaultKind.TRUNCATE`/:attr:`FaultKind.LATENCY`) inside the
    window.  ``target`` names the victim where the layer needs one (the
    CDN for delivery faults); other layers leave it ``None``.
    """

    kind: FaultKind
    layer: Layer
    window: Window = field(default_factory=Window)
    intensity: float = 0.5
    target: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in LAYER_KINDS[self.layer]:
            legal = ", ".join(sorted(k.value for k in LAYER_KINDS[self.layer]))
            raise ChaosError(
                f"fault kind {self.kind.value!r} is not injectable at the "
                f"{self.layer.value} layer (legal: {legal})"
            )
        if not 0.0 < self.intensity <= 1.0:
            raise ChaosError(
                f"intensity must be in (0, 1], got {self.intensity}"
            )
        if self.layer is Layer.DELIVERY and not self.target:
            raise ChaosError(
                f"delivery fault {self.kind.value!r} needs a target CDN"
            )

    @property
    def recoverable(self) -> bool:
        return self.kind in RECOVERABLE_KINDS

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kind": self.kind.value,
            "layer": self.layer.value,
            "window": [self.window.start, self.window.end],
            "intensity": self.intensity,
        }
        if self.target is not None:
            payload["target"] = self.target
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "FaultSpec":
        try:
            kind = FaultKind(str(payload["kind"]))
            layer = Layer(str(payload["layer"]))
            start, end = payload.get("window", [0.0, 1.0])  # type: ignore[misc]
            intensity = float(payload.get("intensity", 0.5))  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as exc:
            raise ChaosError(f"malformed fault spec payload: {exc}") from exc
        target = payload.get("target")
        return cls(
            kind=kind,
            layer=layer,
            window=Window(float(start), float(end)),
            intensity=intensity,
            target=str(target) if target is not None else None,
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded campaign of cross-layer faults."""

    name: str
    seed: int
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise ChaosError("plan name must be non-empty, no spaces")

    # -- queries --------------------------------------------------------

    def specs_for(self, layer: Layer) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.layer is layer)

    def layers(self) -> List[Layer]:
        return sorted({s.layer for s in self.specs}, key=lambda l: l.value)

    def targets(self, layer: Layer) -> List[str]:
        return sorted(
            {s.target for s in self.specs_for(layer) if s.target is not None}
        )

    def spec_seed(self, spec: FaultSpec) -> int:
        """A per-spec RNG seed, stable under plan re-serialization."""
        try:
            index = self.specs.index(spec)
        except ValueError:
            raise ChaosError("spec does not belong to this plan") from None
        return self.seed * 1_000_003 + index

    # -- projections ----------------------------------------------------

    def recoverable(self) -> "FaultPlan":
        """The plan restricted to faults the stack absorbs losslessly."""
        return replace(
            self,
            name=f"{self.name}-recoverable",
            specs=tuple(s for s in self.specs if s.recoverable),
        )

    def only(self, layer: Layer) -> "FaultPlan":
        return replace(
            self,
            name=f"{self.name}-{layer.value}",
            specs=self.specs_for(layer),
        )

    def baseline(self) -> "FaultPlan":
        """The fault-free twin: same name/seed, zero specs."""
        return replace(self, name=f"{self.name}-baseline", specs=())

    # -- serialization --------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        return {
            "version": PLAN_VERSION,
            "name": self.name,
            "seed": self.seed,
            "specs": [spec.to_payload() for spec in self.specs],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_payload(), indent=indent, sort_keys=True)

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "FaultPlan":
        version = payload.get("version")
        if version != PLAN_VERSION:
            raise ChaosError(
                f"unsupported fault-plan version {version!r} "
                f"(expected {PLAN_VERSION})"
            )
        try:
            name = str(payload["name"])
            seed = int(payload["seed"])  # type: ignore[arg-type]
            raw_specs = payload.get("specs", [])
        except (KeyError, TypeError, ValueError) as exc:
            raise ChaosError(f"malformed fault plan payload: {exc}") from exc
        if not isinstance(raw_specs, (list, tuple)):
            raise ChaosError("plan specs must be a list")
        specs = tuple(FaultSpec.from_payload(s) for s in raw_specs)
        return cls(name=name, seed=seed, specs=specs)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ChaosError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ChaosError("fault plan JSON must be an object")
        return cls.from_payload(payload)
