"""Layer injectors: execute one :class:`~repro.chaos.plan.FaultPlan`.

Each injector interprets the plan's specs for one layer against the
*real* pipeline component — no mocks — and reports a fault ledger in
the shared injected / absorbed / leaked vocabulary:

``injected``
    faults the injector actually applied (a window with nothing in it
    injects nothing);
``absorbed``
    faults the layer handled through a *typed* degradation path
    (dead-letter, failover, parse rejection);
``leaked``
    faults that escaped the typed paths — an untyped exception, a
    fetch with no fallback, an event unaccounted for by the ingest
    invariant.  A robust pipeline leaks zero.

All randomness descends from ``plan.spec_seed(spec)`` so repeated runs
are byte-identical; delivery time is an injected tick counter, never
the wall clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec, Layer
from repro.constants import ContentType, Protocol
from repro.entities.cdn import CdnAssignment
from repro.entities.ladder import BitrateLadder
from repro.entities.video import Video
from repro.errors import (
    AllCdnsFailedError,
    ChaosError,
    ManifestError,
    ProtocolDetectionError,
    ReproError,
    TransportError,
)
from repro.resilience import BackoffPolicy, CircuitState
from repro.telemetry.events import Heartbeat, SessionEnd, SessionStart
from repro.telemetry.faults import FaultEvent, corrupt_heartbeat

#: How far (in events) a REORDER_START fault may delay a SessionStart.
#: Capped at the session's own heartbeat count so the start never slips
#: past its SessionEnd — which keeps the fault exactly recoverable by
#: the ingest reorder buffer (park + replay in arrival order).
REORDER_START_SPAN = 3


# ----------------------------------------------------------------------
# Telemetry layer
# ----------------------------------------------------------------------


@dataclass
class TelemetryInjection:
    """A faulted event stream plus the audit of what was done to it."""

    events: List[object]
    injected: Dict[str, int] = field(default_factory=dict)
    log: List[FaultEvent] = field(default_factory=list)
    corrupted_sessions: Set[str] = field(default_factory=set)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())


def inject_telemetry(
    events: Sequence[object], plan: FaultPlan
) -> TelemetryInjection:
    """Apply the plan's telemetry specs to an event stream, in order.

    Specs compose left to right: each sees the stream as the previous
    one left it, with its window re-mapped onto the current length.
    """
    out = TelemetryInjection(events=list(events))
    for spec in plan.specs_for(Layer.TELEMETRY):
        rng = random.Random(plan.spec_seed(spec))
        if spec.kind is FaultKind.REORDER_START:
            _delay_starts(out, spec, rng)
        else:
            _pointwise(out, spec, rng)
    return out


def _count(out: TelemetryInjection, spec: FaultSpec, index: int,
           sid: str) -> None:
    key = spec.kind.value
    out.injected[key] = out.injected.get(key, 0) + 1
    out.log.append(FaultEvent(kind=key, index=index, session_id=sid))
    if sid:
        out.corrupted_sessions.add(sid)


def _pointwise(
    out: TelemetryInjection, spec: FaultSpec, rng: random.Random
) -> None:
    """Drop / duplicate / corrupt: independent per-event faults."""
    events = out.events
    n = len(events)
    i0, i1 = spec.window.indices(n)
    result: List[object] = []
    for index, event in enumerate(events):
        if not (i0 <= index < i1) or rng.random() >= spec.intensity:
            result.append(event)
            continue
        sid = str(getattr(event, "session_id", ""))
        if spec.kind is FaultKind.DROP:
            _count(out, spec, index, sid)
        elif spec.kind is FaultKind.DUPLICATE:
            result.append(event)
            result.append(event)
            _count(out, spec, index, sid)
        elif spec.kind is FaultKind.CORRUPT:
            result.append(_corrupt(out, spec, event, rng, index, sid))
        else:  # pragma: no cover - enum is closed
            raise ChaosError(f"unhandled telemetry kind {spec.kind!r}")
    out.events = result


def _corrupt(
    out: TelemetryInjection,
    spec: FaultSpec,
    event: object,
    rng: random.Random,
    index: int,
    sid: str,
) -> object:
    """Mangle one event the way a cut-off or buggy SDK payload would."""
    if isinstance(event, Heartbeat):
        _count(out, spec, index, sid)
        if rng.random() < 0.5:
            return corrupt_heartbeat(
                event, playing_seconds=-abs(event.playing_seconds) - 1.0
            )
        return corrupt_heartbeat(event, playing_seconds=float("inf"))
    if isinstance(event, SessionEnd):
        _count(out, spec, index, sid)
        return SessionEnd(session_id="")
    if isinstance(event, SessionStart):
        _count(out, spec, index, sid)
        return replace(event, url="")
    return event


def _delay_starts(
    out: TelemetryInjection, spec: FaultSpec, rng: random.Random
) -> None:
    """Delay a SessionStart behind 1..k of its own heartbeats.

    The delayed start never crosses its SessionEnd, so the ingest
    reorder buffer parks the early beats and replays them in arrival
    (= original) order once the start lands: the fold output is
    byte-identical, which is exactly what makes this kind recoverable.
    """
    events = out.events
    n = len(events)
    i0, i1 = spec.window.indices(n)
    index = 0
    while index < n:
        event = events[index]
        if (
            isinstance(event, SessionStart)
            and i0 <= index < i1
            and rng.random() < spec.intensity
        ):
            sid = event.session_id
            beats = 0
            while (
                index + 1 + beats < n
                and isinstance(events[index + 1 + beats], Heartbeat)
                and events[index + 1 + beats].session_id == sid
            ):
                beats += 1
            if beats > 0:
                k = 1 + rng.randrange(min(REORDER_START_SPAN, beats))
                events.pop(index)
                events.insert(index + k, event)
                _count(out, spec, index, sid)
                index += k  # the start's new position; resume after it
        index += 1


# ----------------------------------------------------------------------
# Delivery layer
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BreakerTransition:
    """One breaker state edge, stamped in injected ticks."""

    tick: int
    cdn: str
    from_state: str
    to_state: str


@dataclass
class DeliveryChaosResult:
    """Ledger of a delivery-chaos timeline."""

    ticks: int
    recovery_ticks: int
    served: Dict[str, int] = field(default_factory=dict)
    injected: int = 0
    absorbed: int = 0
    leaked: int = 0
    transitions: List[BreakerTransition] = field(default_factory=list)
    opened: Set[str] = field(default_factory=set)
    final_states: Dict[str, str] = field(default_factory=dict)
    #: opened-to-last-reclose latency per CDN, in injected ticks.
    recovery_latency: Dict[str, int] = field(default_factory=dict)

    @property
    def unrecovered(self) -> List[str]:
        """CDNs whose breaker opened and never re-closed."""
        return sorted(
            cdn
            for cdn in self.opened
            if self.final_states.get(cdn) != CircuitState.CLOSED.value
        )


def run_delivery_chaos(
    plan: FaultPlan,
    assignments: Sequence[CdnAssignment],
    *,
    ticks: int = 120,
    recovery_ticks: int = 60,
    base_kbps: Optional[Mapping[str, float]] = None,
    content_type: ContentType = ContentType.VOD,
    failure_threshold: int = 3,
    recovery_timeout: float = 10.0,
) -> DeliveryChaosResult:
    """Drive a :class:`ResilientFetcher` through the plan's CDN faults.

    The timeline is ``ticks`` fetches under the plan's delivery windows
    followed by ``recovery_ticks`` fault-free fetches, all on an
    injected tick clock; the tail is where every opened breaker must
    find its way back to closed.
    """
    from repro.delivery.multicdn import CdnBroker, ResilientFetcher

    if ticks < 1 or recovery_ticks < 0:
        raise ChaosError("ticks must be >= 1 and recovery_ticks >= 0")
    specs = plan.specs_for(Layer.DELIVERY)
    # Assignment order sets the default throughput ranking (first =
    # fastest): the runner lists fault targets first, so outages hit the
    # CDN actually carrying traffic rather than an idle straggler.
    order = list(dict.fromkeys(a.cdn.name for a in assignments))
    names = sorted(order)
    for spec in specs:
        if spec.target not in names:
            raise ChaosError(
                f"delivery fault targets unknown CDN {spec.target!r} "
                f"(known: {', '.join(names)})"
            )
    kbps = dict(base_kbps or {})
    for offset, name in enumerate(order):
        kbps.setdefault(name, 4000.0 - 500.0 * offset)

    now = [0.0]
    fetcher = ResilientFetcher(
        CdnBroker(),
        policy=BackoffPolicy(retries=1, base_delay=0.0, jitter=0.0),
        failure_threshold=failure_threshold,
        recovery_timeout=recovery_timeout,
        clock=lambda: now[0],
        seed=plan.seed,
    )
    rngs = {id(spec): random.Random(plan.spec_seed(spec)) for spec in specs}
    result = DeliveryChaosResult(ticks=ticks, recovery_ticks=recovery_ticks)
    prev_states = {
        name: fetcher.breaker(name).state.value for name in names
    }
    last_opened: Dict[str, int] = {}

    for tick in range(ticks + recovery_ticks):
        now[0] = float(tick)
        failing: Set[str] = set()
        slowdown: Dict[str, float] = {}
        # Draws are consumed tick by tick for EVERY spec, active window
        # or not, so the stream stays aligned across plan edits.
        for spec in specs:
            active = tick < ticks and spec.window.contains_tick(tick, ticks)
            hit = rngs[id(spec)].random() < spec.intensity
            if not (active and hit):
                continue
            assert spec.target is not None
            if spec.kind is FaultKind.OUTAGE:
                failing.add(spec.target)
            else:  # LATENCY
                factor = slowdown.get(spec.target, 1.0)
                slowdown[spec.target] = factor * (1.0 - spec.intensity)
        result.injected += len(failing) + len(slowdown)

        def do_fetch(name: str) -> str:
            if name in failing:
                raise TransportError(f"injected outage on {name}")
            return name

        try:
            outcome = fetcher.fetch(assignments, content_type, do_fetch)
        except AllCdnsFailedError:
            result.leaked += 1
        else:
            served = outcome.cdn_name
            result.served[served] = result.served.get(served, 0) + 1
            fetcher.broker.observe(
                served, kbps[served] * slowdown.get(served, 1.0)
            )
            if failing or slowdown:
                result.absorbed += 1
        for name in names:
            state = fetcher.breaker(name).state.value
            if state != prev_states[name]:
                result.transitions.append(
                    BreakerTransition(
                        tick=tick,
                        cdn=name,
                        from_state=prev_states[name],
                        to_state=state,
                    )
                )
                if state == CircuitState.OPEN.value:
                    result.opened.add(name)
                    last_opened.setdefault(name, tick)
                elif state == CircuitState.CLOSED.value and name in last_opened:
                    result.recovery_latency[name] = (
                        tick - last_opened[name]
                    )
                prev_states[name] = state

    result.final_states = {
        name: fetcher.breaker(name).state.value for name in names
    }
    return result


# ----------------------------------------------------------------------
# Manifest layer
# ----------------------------------------------------------------------

#: Protocols the manifest corpus cycles through (all writer-backed).
_MANIFEST_PROTOCOLS: Tuple[Protocol, ...] = (
    Protocol.HLS,
    Protocol.DASH,
    Protocol.MSS,
    Protocol.HDS,
)


@dataclass
class ManifestChaosResult:
    """Ledger of a manifest-corruption sweep."""

    documents: int
    injected: int = 0
    absorbed: int = 0
    leaked: int = 0
    survived: int = 0
    #: absorbed counts by the typed error class that caught the fault.
    absorbed_by: Dict[str, int] = field(default_factory=dict)


def run_manifest_chaos(
    plan: FaultPlan,
    *,
    documents: int = 64,
    base_url: str = "http://cdn-a.example.net",
) -> ManifestChaosResult:
    """Feed truncated/malformed manifests through the real parsers.

    Every faulted document must either still parse (``survived``) or be
    rejected with a typed :class:`~repro.errors.ManifestError` /
    :class:`~repro.errors.ProtocolDetectionError` (``absorbed``).  Any
    other exception is a ``leaked`` fault — the "no untyped failure"
    contract the packaging layer advertises.
    """
    from repro.packaging.manifest import manifest_writer_for, parser_for

    if documents < 1:
        raise ChaosError("documents must be >= 1")
    specs = plan.specs_for(Layer.MANIFEST)
    result = ManifestChaosResult(documents=documents)
    ladder = BitrateLadder.from_bitrates([400.0, 800.0, 1600.0])
    rngs = {id(spec): random.Random(plan.spec_seed(spec)) for spec in specs}

    for index in range(documents):
        protocol = _MANIFEST_PROTOCOLS[index % len(_MANIFEST_PROTOCOLS)]
        video = Video(video_id=f"vid{index:04d}", duration_seconds=60.0)
        text = manifest_writer_for(protocol).render(video, ladder, base_url)
        faulted = False
        for spec in specs:
            rng = rngs[id(spec)]
            # One draw per (spec, document) keeps streams aligned.
            hit = rng.random() < spec.intensity
            if not spec.window.contains_tick(index, documents) or not hit:
                continue
            faulted = True
            if spec.kind is FaultKind.TRUNCATE:
                cut = max(1, int(len(text) * (1.0 - spec.intensity)))
                text = text[:cut]
            else:  # MALFORM
                chars = list(text)
                for pos in range(len(chars)):
                    if rng.random() < spec.intensity:
                        chars[pos] = "~"
                text = "".join(chars)
        if not faulted:
            continue
        result.injected += 1
        try:
            parser_for(protocol).parse(text)
        except (ManifestError, ProtocolDetectionError) as exc:
            result.absorbed += 1
            key = type(exc).__name__
            result.absorbed_by[key] = result.absorbed_by.get(key, 0) + 1
        except Exception:  # replint: disable=RPL003 - the leak detector:
            # an untyped escape from a parser IS the defect being counted.
            result.leaked += 1
        else:
            result.survived += 1
    return result


# ----------------------------------------------------------------------
# Ingest layer
# ----------------------------------------------------------------------

#: Session-id prefix marking chaos-injected events, so the ledger can
#: attribute dead letters to the injection rather than the workload.
CHAOS_SESSION_PREFIX = "chaos"


@dataclass(frozen=True)
class PoisonEvent:
    """An event of a type the pipeline has never heard of."""

    session_id: str
    payload: str = "\x00garbage\x00"


@dataclass
class IngestChaosResult:
    """Ledger of an ingest-pressure run."""

    report: object  # IngestReport; typed loosely to avoid a hard import
    injected: int = 0
    absorbed: int = 0
    leaked: int = 0
    invariant_ok: bool = True


def inject_ingest_pressure(
    events: Sequence[object], plan: FaultPlan
) -> Tuple[List[object], int]:
    """Interleave quarantine-storm and orphan-flood events per the plan.

    Returns the pressured stream and the number of injected events.
    Injected events carry :data:`CHAOS_SESSION_PREFIX` session ids so
    they are attributable in the dead-letter queue.
    """
    out = list(events)
    injected = 0
    for spec_index, spec in enumerate(plan.specs_for(Layer.INGEST)):
        rng = random.Random(plan.spec_seed(spec))
        n = len(out)
        i0, i1 = spec.window.indices(n)
        additions: List[Tuple[int, object]] = []
        for index in range(i0, i1):
            if rng.random() >= spec.intensity:
                continue
            sid = f"{CHAOS_SESSION_PREFIX}_{spec_index}_{index:06d}"
            if spec.kind is FaultKind.QUARANTINE_STORM:
                additions.append((index, PoisonEvent(session_id=sid)))
            else:  # ORPHAN_FLOOD: heartbeats whose start never comes
                additions.append(
                    (
                        index,
                        Heartbeat(
                            session_id=sid,
                            interval_seconds=20.0,
                            playing_seconds=18.0,
                            rebuffering_seconds=0.0,
                            bitrate_kbps=800.0,
                            cdn_name="chaos-cdn",
                            seq=0,
                        ),
                    )
                )
        for offset, (index, event) in enumerate(additions):
            out.insert(index + offset, event)
        injected += len(additions)
    return out, injected


def run_ingest_chaos(
    events: Sequence[object],
    plan: FaultPlan,
    *,
    reorder_buffer: int = 256,
) -> IngestChaosResult:
    """Run the pressured stream through a quarantine-policy pipeline.

    ``absorbed`` counts injected events that surfaced in the dead-letter
    queue or dedup counters; ``leaked`` is injected minus absorbed plus
    any events the accounting invariant cannot explain — both must be
    zero for the pipeline's "one corrupt event never poisons a batch"
    claim to hold.
    """
    from repro.telemetry.ingest import ErrorPolicy, IngestPipeline

    pressured, injected = inject_ingest_pressure(events, plan)
    pipeline = IngestPipeline(
        ErrorPolicy.QUARANTINE, reorder_buffer=reorder_buffer
    )
    report = pipeline.run(pressured)
    absorbed = sum(
        1
        for letter in report.dead_letters
        if letter.sequence >= 0
        and str(getattr(letter.event, "session_id", "")).startswith(
            CHAOS_SESSION_PREFIX
        )
    )
    invariant_ok = (
        report.accepted + report.deduped + report.event_quarantined
        == report.total_events
    )
    unaccounted = abs(
        report.total_events
        - (report.accepted + report.deduped + report.event_quarantined)
    )
    return IngestChaosResult(
        report=report,
        injected=injected,
        absorbed=absorbed,
        leaked=max(0, injected - absorbed) + unaccounted,
        invariant_ok=invariant_ok,
    )
