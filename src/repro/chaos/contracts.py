"""Degradation contracts: what graceful degradation *means*, checked.

A :class:`DegradationContract` is a named predicate over a
:class:`~repro.chaos.runner.ChaosRun` asserting one graceful-degradation
invariant — "a regional CDN outage shifts traffic, not figures", "every
opened breaker re-closes once faults end", "recovered output equals the
fault-free output".  Contracts mirror the testkit oracle framework
(elementary-assertion counting, vacuity detection, typed skips) but
fail with :class:`~repro.errors.ContractViolation` so a degradation
report is distinguishable from an oracle failure at the exception
level.

Contracts register against specific scenarios or against ``"*"`` (every
chaos scenario); :func:`run_contract` turns one execution into a
:class:`ContractOutcome` for the degradation report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro import obs
from repro.errors import ContractViolation, ReproError, TestkitError
from repro.testkit.oracles import FAIL, PASS, SKIP, Check, Skip


class ContractCheck(Check):
    """A :class:`Check` whose violations are :class:`ContractViolation`.

    Same counting semantics; only the exception type changes, so the
    chaos CLI can map violations to its exit code without string
    matching.
    """

    def that(self, condition: bool, detail: str) -> None:
        self.count += 1
        if not condition:
            raise ContractViolation(detail)


@dataclass(frozen=True)
class ContractOutcome:
    """One (contract, scenario) line of the degradation report."""

    contract: str
    scenario: str
    status: str  # pass | fail | skip
    checks: int
    detail: str

    @property
    def passed(self) -> bool:
        """Skips count as passed: the invariant holds vacuously."""
        return self.status != FAIL


#: A contract body: asserts through ``check``; returns a short human
#: summary of what was verified.  The first argument is a
#: :class:`~repro.chaos.runner.ChaosRun` (typed loosely to keep this
#: module import-light).
ContractFn = Callable[[object, ContractCheck], str]


@dataclass(frozen=True)
class DegradationContract:
    """A registered contract: identity, scope, and body."""

    name: str
    description: str
    scenarios: Tuple[str, ...]
    fn: ContractFn

    def applies_to(self, scenario: str) -> bool:
        return "*" in self.scenarios or scenario in self.scenarios


_CONTRACTS: Dict[str, DegradationContract] = {}


def contract(
    name: str, description: str, scenarios: Tuple[str, ...] = ("*",)
) -> Callable[[ContractFn], ContractFn]:
    """Register a contract body under a name and scenario scope."""
    if not scenarios:
        raise TestkitError(f"contract {name!r} must scope to some scenario")

    def decorator(fn: ContractFn) -> ContractFn:
        if name in _CONTRACTS:
            raise TestkitError(f"duplicate contract name {name!r}")
        _CONTRACTS[name] = DegradationContract(
            name=name,
            description=description,
            scenarios=tuple(scenarios),
            fn=fn,
        )
        return fn

    return decorator


def contract_names() -> List[str]:
    return sorted(_CONTRACTS)


def get_contract(name: str) -> DegradationContract:
    try:
        return _CONTRACTS[name]
    except KeyError:
        raise TestkitError(
            f"unknown contract {name!r}; known: {', '.join(contract_names())}"
        ) from None


def contracts_for(scenario: str) -> List[DegradationContract]:
    """Contracts applicable to one scenario, name-sorted."""
    return [
        c for _, c in sorted(_CONTRACTS.items()) if c.applies_to(scenario)
    ]


def run_contract(
    target: DegradationContract, chaos_run: object
) -> ContractOutcome:
    """Execute one contract against one chaos run.

    :class:`~repro.errors.ContractViolation` and unexpected library
    errors become failing outcomes; a pass with zero elementary checks
    is itself a failure (a vacuous contract is a harness bug).
    Programming errors propagate.
    """
    check = ContractCheck()
    scenario = chaos_run.spec.name  # type: ignore[attr-defined]
    with obs.span(
        "chaos.contract", contract=target.name, scenario=scenario
    ):
        try:
            summary = target.fn(chaos_run, check)
            status, detail = PASS, summary
            if check.count == 0:
                status = FAIL
                detail = (
                    f"contract {target.name} made no checks — a vacuous "
                    "pass is a harness bug"
                )
        except Skip as skip:
            status, detail = SKIP, str(skip)
        except ContractViolation as violation:
            status, detail = FAIL, str(violation)
        except ReproError as error:
            status, detail = (
                FAIL,
                f"unexpected {type(error).__name__}: {error}",
            )
    obs.counter("chaos.contracts", status=status).inc()
    return ContractOutcome(
        contract=target.name,
        scenario=scenario,
        status=status,
        checks=check.count,
        detail=detail,
    )
