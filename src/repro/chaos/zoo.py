"""The production scenario zoo: five chaos scenarios with contracts.

Each scenario pairs a small deterministic ecosystem build with a
cross-layer :class:`~repro.chaos.plan.FaultPlan` and, where the
scenario is metamorphic, a registered perturbation of the built
dataset.  The degradation contracts at the bottom state what graceful
degradation means for each one:

``flash-crowd``
    One publisher's audience multiplies 5x at the latest snapshot.
    View-hour-weighted shares must move; publisher-count shares must
    not (a flash crowd changes *traffic*, not *adoption*).
``regional-cdn-outage``
    The regional CDN carrying the hot path goes dark mid-run.  Traffic
    must fail over with zero leaked fetches, the breaker must re-close
    once the outage ends, and packaging figures must not change.
``protocol-migration-wave``
    Every RTMP view migrates to HLS.  RTMP support must vanish, HLS
    support must not shrink, and nothing else may move.
``low-end-device-fleet``
    The latest snapshot's fleet is capped to a low-end bitrate.
    Bitrates may only fall; view-hours and engagement must survive.
``abr-policy-zoo``
    The hybrid ABR must never pick above either of its constituent
    policies, across a deterministic grid of player states.

All five plans include at least one *recoverable* telemetry fault so
the chaos-recovery differential oracle is never vacuous on them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.chaos.contracts import ContractCheck, contract
from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec, Layer, Window
from repro.constants import Protocol
from repro.core.dimensions import CdnDimension, ProtocolDimension
from repro.core.prevalence import (
    publisher_support_series,
    view_hour_share_series,
)
from repro.synthesis.generator import EcosystemResult
from repro.telemetry.dataset import Dataset
from repro.testkit.oracles import Skip
from repro.testkit.scenario import (
    ScenarioSpec,
    register_perturbation,
    register_scenario,
)

#: Bitrate ceiling (kbps) the low-end-device-fleet perturbation imposes.
LOW_END_CAP_KBPS = 800.0

#: Audience multiplier of the flash-crowd perturbation.
FLASH_CROWD_FACTOR = 5.0


# ----------------------------------------------------------------------
# Perturbations (metamorphic halves of the scenarios)
# ----------------------------------------------------------------------


def _with_records(result: EcosystemResult, records: List) -> EcosystemResult:
    return dataclasses.replace(result, dataset=Dataset(records))


def flash_crowd(result: EcosystemResult) -> EcosystemResult:
    """Multiply the busiest publisher's latest-snapshot audience 5x.

    The busiest publisher is the one with the most view-hours at the
    latest snapshot (ties broken by id), so the choice is deterministic.
    """
    dataset = result.dataset
    latest = dataset.snapshots()[-1]
    hours: Dict[str, float] = {}
    for record in dataset.records:
        if record.snapshot == latest:
            hours[record.publisher_id] = (
                hours.get(record.publisher_id, 0.0) + record.view_hours
            )
    busiest = min(
        hours, key=lambda publisher_id: (-hours[publisher_id], publisher_id)
    )
    records = [
        dataclasses.replace(
            record, weight=record.weight * FLASH_CROWD_FACTOR
        )
        if record.snapshot == latest and record.publisher_id == busiest
        else record
        for record in dataset.records
    ]
    return _with_records(result, records)


def protocol_migration_wave(result: EcosystemResult) -> EcosystemResult:
    """Migrate every RTMP view to HLS (the §4.1 die-off, overnight)."""
    from repro.core.dimensions import record_protocol

    records = []
    for record in result.dataset.records:
        if record_protocol(record) is Protocol.RTMP:
            migrated = (
                record.url.replace("rtmp://", "http://", 1)
                + "/master.m3u8"
            )
            records.append(dataclasses.replace(record, url=migrated))
        else:
            records.append(record)
    return _with_records(result, records)


def low_end_device_fleet(result: EcosystemResult) -> EcosystemResult:
    """Cap the latest snapshot's delivered bitrate at the low-end rung."""
    dataset = result.dataset
    latest = dataset.snapshots()[-1]
    records = [
        dataclasses.replace(
            record,
            avg_bitrate_kbps=min(record.avg_bitrate_kbps, LOW_END_CAP_KBPS),
        )
        if record.snapshot == latest
        else record
        for record in dataset.records
    ]
    return _with_records(result, records)


register_perturbation("flash-crowd", flash_crowd)
register_perturbation("protocol-migration-wave", protocol_migration_wave)
register_perturbation("low-end-device-fleet", low_end_device_fleet)


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------

FLASH_CROWD_PLAN = FaultPlan(
    name="flash-crowd",
    seed=31,
    specs=(
        FaultSpec(
            kind=FaultKind.DUPLICATE,
            layer=Layer.TELEMETRY,
            window=Window(0.0, 0.5),
            intensity=0.08,
        ),
        FaultSpec(
            kind=FaultKind.REORDER_START,
            layer=Layer.TELEMETRY,
            window=Window(0.2, 0.9),
            intensity=0.3,
        ),
        FaultSpec(
            kind=FaultKind.QUARANTINE_STORM,
            layer=Layer.INGEST,
            window=Window(0.4, 0.6),
            intensity=0.2,
        ),
    ),
)

REGIONAL_OUTAGE_PLAN = FaultPlan(
    name="regional-cdn-outage",
    seed=32,
    specs=(
        FaultSpec(
            kind=FaultKind.OUTAGE,
            layer=Layer.DELIVERY,
            window=Window(0.1, 0.6),
            intensity=0.95,
            target="R12",
        ),
        FaultSpec(
            kind=FaultKind.LATENCY,
            layer=Layer.DELIVERY,
            window=Window(0.3, 0.5),
            intensity=0.4,
            target="A",
        ),
        FaultSpec(
            kind=FaultKind.DUPLICATE,
            layer=Layer.TELEMETRY,
            window=Window(0.0, 1.0),
            intensity=0.05,
        ),
    ),
)

MIGRATION_WAVE_PLAN = FaultPlan(
    name="protocol-migration-wave",
    seed=33,
    specs=(
        FaultSpec(
            kind=FaultKind.TRUNCATE,
            layer=Layer.MANIFEST,
            window=Window(0.0, 0.4),
            intensity=0.6,
        ),
        FaultSpec(
            kind=FaultKind.MALFORM,
            layer=Layer.MANIFEST,
            window=Window(0.5, 0.9),
            intensity=0.3,
        ),
        FaultSpec(
            kind=FaultKind.DUPLICATE,
            layer=Layer.TELEMETRY,
            window=Window(0.0, 0.6),
            intensity=0.06,
        ),
        FaultSpec(
            kind=FaultKind.REORDER_START,
            layer=Layer.TELEMETRY,
            window=Window(0.1, 0.8),
            intensity=0.25,
        ),
    ),
)

LOW_END_FLEET_PLAN = FaultPlan(
    name="low-end-device-fleet",
    seed=34,
    specs=(
        FaultSpec(
            kind=FaultKind.ORPHAN_FLOOD,
            layer=Layer.INGEST,
            window=Window(0.2, 0.7),
            intensity=0.15,
        ),
        FaultSpec(
            kind=FaultKind.QUARANTINE_STORM,
            layer=Layer.INGEST,
            window=Window(0.5, 0.8),
            intensity=0.1,
        ),
        FaultSpec(
            kind=FaultKind.DUPLICATE,
            layer=Layer.TELEMETRY,
            window=Window(0.0, 1.0),
            intensity=0.05,
        ),
    ),
)

ABR_ZOO_PLAN = FaultPlan(
    name="abr-policy-zoo",
    seed=35,
    specs=(
        FaultSpec(
            kind=FaultKind.LATENCY,
            layer=Layer.DELIVERY,
            window=Window(0.2, 0.8),
            intensity=0.5,
            target="A",
        ),
        FaultSpec(
            kind=FaultKind.DUPLICATE,
            layer=Layer.TELEMETRY,
            window=Window(0.0, 0.5),
            intensity=0.07,
        ),
        FaultSpec(
            kind=FaultKind.REORDER_START,
            layer=Layer.TELEMETRY,
            window=Window(0.3, 0.9),
            intensity=0.3,
        ),
    ),
)


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

register_scenario(
    ScenarioSpec(
        name="flash-crowd",
        description=(
            "one publisher's audience multiplies 5x at the latest "
            "snapshot under duplicate/reorder telemetry chaos"
        ),
        seed=3101,
        alt_seed=3102,
        snapshot_limit=2,
        n_publishers=24,
        qoe_sessions=12,
        figure_ids=("F2a", "F2b", "F6a"),
        chaos_plan=FLASH_CROWD_PLAN,
        perturb="flash-crowd",
    )
)

register_scenario(
    ScenarioSpec(
        name="regional-cdn-outage",
        description=(
            "the regional CDN on the hot path goes dark mid-run; "
            "failover must absorb it and the breaker must re-close"
        ),
        seed=3201,
        alt_seed=3202,
        snapshot_limit=2,
        n_publishers=24,
        qoe_sessions=12,
        figure_ids=("F3a", "F4"),
        chaos_plan=REGIONAL_OUTAGE_PLAN,
    )
)

register_scenario(
    ScenarioSpec(
        name="protocol-migration-wave",
        description=(
            "every RTMP view migrates to HLS overnight while manifests "
            "arrive truncated and malformed"
        ),
        seed=3301,
        alt_seed=3302,
        snapshot_limit=2,
        n_publishers=28,
        qoe_sessions=12,
        figure_ids=("F2a", "F2b"),
        chaos_plan=MIGRATION_WAVE_PLAN,
        perturb="protocol-migration-wave",
    )
)

register_scenario(
    ScenarioSpec(
        name="low-end-device-fleet",
        description=(
            "the latest snapshot's fleet is capped to a low-end "
            "bitrate under ingest dead-letter pressure"
        ),
        seed=3401,
        alt_seed=3402,
        snapshot_limit=2,
        n_publishers=24,
        qoe_sessions=12,
        figure_ids=("F11b", "F9a"),
        chaos_plan=LOW_END_FLEET_PLAN,
        perturb="low-end-device-fleet",
    )
)

register_scenario(
    ScenarioSpec(
        name="abr-policy-zoo",
        description=(
            "the ABR family under degraded delivery; the hybrid policy "
            "must stay under both constituents"
        ),
        seed=3501,
        alt_seed=3502,
        snapshot_limit=2,
        n_publishers=24,
        qoe_sessions=24,
        figure_ids=("F6a", "F6c", "F2b"),
        chaos_plan=ABR_ZOO_PLAN,
    )
)


# ----------------------------------------------------------------------
# Universal contracts
# ----------------------------------------------------------------------


@contract(
    "recovered-equals-fault-free",
    "after recoverable faults end, ingest output and every figure row "
    "equal the fault-free run exactly",
)
def recovered_equals_fault_free(run, check: ContractCheck) -> str:
    recovery = run.recovery()
    check.that(
        recovery.injection.total_injected > 0,
        "plan injected no recoverable telemetry faults — the recovery "
        "comparison would be vacuous",
    )
    check.equal(
        recovery.quarantined, 0, "recoverable faults must not quarantine"
    )
    check.equal(
        len(recovery.recovered_records),
        len(recovery.clean_records),
        "recovered record count",
    )
    check.that(
        recovery.identical,
        "recovered records differ from the fault-free replay",
    )
    clean_rows = run.figure_rows_from(recovery.clean_records, "clean")
    recovered_rows = run.figure_rows_from(
        recovery.recovered_records, "recovered"
    )
    for figure_id in sorted(clean_rows):
        check.rows_equal(
            recovered_rows[figure_id],
            clean_rows[figure_id],
            f"figure {figure_id} under recovered faults",
        )
    return (
        f"{recovery.injection.total_injected} recoverable faults absorbed; "
        f"{len(clean_rows)} figures byte-identical"
    )


@contract(
    "breaker-reclose",
    "every circuit breaker opened by delivery faults re-closes once "
    "the faults end",
)
def breaker_reclose(run, check: ContractCheck) -> str:
    if Layer.DELIVERY not in run.plan.layers():
        raise Skip("plan has no delivery faults")
    delivery = run.delivery()
    check.equal(
        delivery.unrecovered,
        [],
        "breakers still open after the recovery tail",
    )
    for cdn in sorted(delivery.opened):
        check.that(
            cdn in delivery.recovery_latency,
            f"breaker for {cdn} opened but never recorded a re-close",
        )
        check.that(
            0 < delivery.recovery_latency[cdn]
            <= delivery.ticks + delivery.recovery_ticks,
            f"implausible recovery latency for {cdn}: "
            f"{delivery.recovery_latency[cdn]} ticks",
        )
    return (
        f"{len(delivery.opened)} breaker(s) opened and re-closed "
        f"(latencies {delivery.recovery_latency})"
    )


@contract(
    "no-silent-leaks",
    "every injected fault is absorbed through a typed degradation "
    "path; zero leak into silent corruption",
)
def no_silent_leaks(run, check: ContractCheck) -> str:
    ledger = run.ledger()
    check.that(bool(ledger), "plan exercises no layer at all")
    total = 0
    for layer in sorted(ledger):
        counts = ledger[layer]
        total += counts["injected"]
        check.equal(counts["leaked"], 0, f"{layer} leaked faults")
    check.that(total > 0, "plan injected nothing anywhere")
    return f"{total} faults injected across {len(ledger)} layer(s), 0 leaked"


# ----------------------------------------------------------------------
# Scenario-specific contracts
# ----------------------------------------------------------------------


@contract(
    "flash-crowd-shares",
    "a flash crowd moves view-hour-weighted shares but not "
    "publisher-count shares",
    scenarios=("flash-crowd",),
)
def flash_crowd_shares(run, check: ContractCheck) -> str:
    base = run.scenario.result.dataset
    perturbed = run.scenario.perturbed_result().dataset
    dimension = CdnDimension()
    check.equal(
        publisher_support_series(perturbed, dimension),
        publisher_support_series(base, dimension),
        "publisher-count CDN shares under a flash crowd",
    )
    latest = base.snapshots()[-1]
    before = view_hour_share_series(base, dimension)[latest]
    after = view_hour_share_series(perturbed, dimension)[latest]
    moved = max(
        abs(after.get(cdn, 0.0) - before.get(cdn, 0.0))
        for cdn in set(before) | set(after)
    )
    check.that(
        moved > 0.1,
        f"view-hour CDN shares barely moved (max delta {moved:.3f}pp) — "
        "the flash crowd had no weight",
    )
    return f"publisher shares frozen; view-hour shares moved {moved:.1f}pp"


@contract(
    "regional-outage-contained",
    "a regional CDN outage is absorbed by failover and does not "
    "change packaging figures",
    scenarios=("regional-cdn-outage",),
)
def regional_outage_contained(run, check: ContractCheck) -> str:
    delivery = run.delivery()
    check.that(delivery.injected > 0, "outage window injected nothing")
    check.that(
        delivery.absorbed > 0, "no fetch was served during the outage"
    )
    check.equal(
        delivery.leaked, 0, "fetches exhausted every CDN (leaked)"
    )
    check.that(
        "R12" in delivery.opened,
        "the outage never opened the regional CDN's breaker",
    )
    healthy_served = sum(
        count
        for cdn, count in delivery.served.items()
        if cdn not in run.plan.targets(Layer.DELIVERY)
    )
    check.that(
        healthy_served > 0,
        "no healthy CDN ever served — failover did not engage",
    )
    base_rows = {
        figure_id: run.scenario.figure_rows(figure_id)
        for figure_id in run.spec.figures()
    }
    fresh_rows = run.figure_rows_from(
        run.scenario.result.dataset.records, "post-outage"
    )
    for figure_id in sorted(base_rows):
        check.rows_equal(
            fresh_rows[figure_id],
            base_rows[figure_id],
            f"figure {figure_id} after the outage",
        )
    return (
        f"outage absorbed ({delivery.absorbed} served under fault, "
        f"{healthy_served} by healthy CDNs); figures untouched"
    )


@contract(
    "migration-wave-monotone",
    "an RTMP-to-HLS migration erases RTMP support, never shrinks HLS "
    "support, and preserves every record",
    scenarios=("protocol-migration-wave",),
)
def migration_wave_monotone(run, check: ContractCheck) -> str:
    base = run.scenario.result.dataset
    perturbed = run.scenario.perturbed_result().dataset
    check.equal(
        len(perturbed), len(base), "record count across the migration"
    )
    dimension = ProtocolDimension(http_only=False)
    support_before = publisher_support_series(base, dimension)
    support_after = publisher_support_series(perturbed, dimension)
    migrated = 0
    for snapshot in base.snapshots():
        before, after = support_before[snapshot], support_after[snapshot]
        rtmp_before = before.get(Protocol.RTMP, 0.0)
        migrated += rtmp_before > 0
        check.equal(
            after.get(Protocol.RTMP, 0.0),
            0.0,
            f"RTMP support at {snapshot} after the wave",
        )
        check.that(
            after.get(Protocol.HLS, 0.0) >= before.get(Protocol.HLS, 0.0),
            f"HLS support shrank at {snapshot}: "
            f"{after.get(Protocol.HLS, 0.0):.2f} < "
            f"{before.get(Protocol.HLS, 0.0):.2f}",
        )
        for protocol in (Protocol.DASH, Protocol.MSS, Protocol.HDS):
            check.close(
                after.get(protocol, 0.0),
                before.get(protocol, 0.0),
                f"{protocol.value} support at {snapshot} (bystander)",
            )
    check.that(
        migrated > 0,
        "no snapshot had RTMP support to migrate — the wave is vacuous",
    )
    return f"RTMP erased across {len(base.snapshots())} snapshot(s)"


@contract(
    "low-end-fleet-caps",
    "capping the fleet's bitrate only lowers bitrates; view-hours and "
    "engagement survive intact",
    scenarios=("low-end-device-fleet",),
)
def low_end_fleet_caps(run, check: ContractCheck) -> str:
    base = run.scenario.result.dataset.records
    perturbed = run.scenario.perturbed_result().dataset.records
    check.equal(len(perturbed), len(base), "record count under the cap")
    capped = 0
    for before, after in zip(base, perturbed):
        if after.avg_bitrate_kbps != before.avg_bitrate_kbps:
            capped += 1
            check.that(
                after.avg_bitrate_kbps == LOW_END_CAP_KBPS
                and before.avg_bitrate_kbps > LOW_END_CAP_KBPS,
                "cap changed a bitrate it should not have "
                f"({before.avg_bitrate_kbps} -> {after.avg_bitrate_kbps})",
            )
    check.that(capped > 0, "the cap touched no record — vacuous fleet")
    check.close(
        sum(r.view_hours for r in perturbed),
        sum(r.view_hours for r in base),
        "total view-hours under the cap",
    )
    check.equal(
        [r.rebuffer_ratio for r in perturbed],
        [r.rebuffer_ratio for r in base],
        "rebuffer ratios under the cap",
    )
    return f"{capped} record(s) capped at {LOW_END_CAP_KBPS:.0f} kbps"


@contract(
    "abr-hybrid-floor",
    "the hybrid ABR never picks a rendition above either of its "
    "constituent policies",
    scenarios=("abr-policy-zoo",),
)
def abr_hybrid_floor(run, check: ContractCheck) -> str:
    from repro.entities.ladder import BitrateLadder
    from repro.playback.abr import (
        AbrState,
        BufferBasedAbr,
        HybridAbr,
        ThroughputAbr,
    )

    ladders = (
        BitrateLadder.from_bitrates([300.0, 700.0, 1500.0, 3000.0]),
        BitrateLadder.from_bitrates([235.0, 375.0, 560.0, 750.0, 1050.0]),
    )
    throughput = ThroughputAbr()
    buffer_based = BufferBasedAbr()
    hybrid = HybridAbr(throughput, buffer_based)
    states = 0
    for ladder in ladders:
        for buffer_seconds in (0.0, 4.0, 10.0, 18.0, 30.0):
            for ewma_kbps in (200.0, 600.0, 1200.0, 4000.0):
                state = AbrState(
                    buffer_seconds=buffer_seconds,
                    last_throughput_kbps=ewma_kbps,
                    ewma_throughput_kbps=ewma_kbps,
                )
                by_rate = throughput.choose(ladder, state)
                by_buffer = buffer_based.choose(ladder, state)
                chosen = hybrid.choose(ladder, state)
                check.equal(
                    chosen.bitrate_kbps,
                    min(by_rate.bitrate_kbps, by_buffer.bitrate_kbps),
                    f"hybrid choice at buffer={buffer_seconds}s "
                    f"ewma={ewma_kbps}kbps",
                )
                states += 1
    return f"hybrid stayed at the min across {states} player states"
