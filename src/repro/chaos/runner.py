"""The chaos runner: one scenario x one fault plan -> degradation report.

:class:`ChaosRun` is the cached artifact the degradation contracts
inspect, the chaos analogue of
:class:`~repro.testkit.scenario.ScenarioRun`: every expensive stage —
the replayed event stream, the faulted ingest, the delivery timeline,
the manifest sweep, the recovery pair — is built lazily and exactly
once, so a panel of contracts over one scenario shares the work.

:func:`run_chaos` executes every applicable contract for each requested
scenario and folds the outcomes plus the per-layer fault ledgers into a
:class:`DegradationReport`, the artifact ``repro chaos run --json``
emits and CI archives.  The payload is deterministic (sorted keys, no
timestamps) so two runs of the same tree diff clean.
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.chaos.contracts import (
    ContractOutcome,
    contracts_for,
    run_contract,
)
from repro.chaos.injectors import (
    DeliveryChaosResult,
    IngestChaosResult,
    ManifestChaosResult,
    TelemetryInjection,
    inject_telemetry,
    run_delivery_chaos,
    run_ingest_chaos,
    run_manifest_chaos,
)
from repro.chaos.plan import FaultPlan, Layer
from repro.core.report import format_table
from repro.entities.cdn import CDN, CdnAssignment
from repro.errors import ChaosError
from repro.testkit.scenario import (
    ScenarioRun,
    ScenarioSpec,
    get_scenario,
    run_scenario,
    scenario_names,
)

#: Schema version of the degradation-report JSON payload.
DEGRADATION_REPORT_VERSION = 1

#: Clean records replayed through the telemetry/ingest chaos stages.
REPLAY_LIMIT = 160

#: CDN names the delivery timeline falls back to when the plan's
#: targets leave fewer than two healthy CDNs to absorb an outage.
_FALLBACK_CDNS = ("A", "B", "C", "D", "E")


@dataclass
class TelemetryOutcome:
    """Fault ledger of the telemetry layer for one run.

    ``leaked`` counts *silent corruption*: output records that changed
    relative to the fault-free replay in excess of the sessions the
    injector touched.  Every changed record must trace to a touched
    session, so any excess means an untouched session was altered.
    """

    injected: int
    absorbed: int
    leaked: int
    touched_sessions: int
    changed_records: int
    quarantined: int
    deduped: int
    clean_records: int
    faulted_records: int


@dataclass
class RecoveryOutcome:
    """The chaos-with-recovery vs fault-free comparison inputs."""

    injection: TelemetryInjection
    clean_records: Tuple[object, ...]
    recovered_records: Tuple[object, ...]
    quarantined: int
    deduped: int

    @property
    def identical(self) -> bool:
        return list(self.recovered_records) == list(self.clean_records)


class ChaosRun:
    """Every derived chaos artifact of one scenario, cached.

    All stages are pure functions of (spec, plan), so access order
    cannot leak between contracts.
    """

    def __init__(
        self, spec: ScenarioSpec, scenario: Optional[ScenarioRun] = None
    ) -> None:
        self.spec = spec
        plan = spec.chaos_plan
        if plan is None:
            plan = FaultPlan(name=f"{spec.name}-noop", seed=spec.seed)
        if not isinstance(plan, FaultPlan):
            raise ChaosError(
                f"scenario {spec.name!r} carries a non-FaultPlan chaos_plan"
            )
        self.plan: FaultPlan = plan
        # An existing ScenarioRun may be passed to share its cached
        # builds (the chaos-recovery oracle does this).
        self.scenario: ScenarioRun = scenario or run_scenario(spec)
        self._events: Optional[List[object]] = None
        self._clean_report = None
        self._telemetry: Optional[TelemetryOutcome] = None
        self._delivery: Optional[DeliveryChaosResult] = None
        self._manifest: Optional[ManifestChaosResult] = None
        self._ingest: Optional[IngestChaosResult] = None
        self._recovery: Optional[RecoveryOutcome] = None
        self._figure_rows: Dict[str, Dict[str, List[Dict[str, object]]]] = {}

    # -- shared inputs ---------------------------------------------------

    def events(self) -> List[object]:
        """The clean replayed event stream every injector starts from."""
        from repro.telemetry.ingest import events_from_records

        if self._events is None:
            records = self.scenario.clean_records(REPLAY_LIMIT)
            if not records:
                raise ChaosError(
                    f"scenario {self.spec.name!r} produced no replayable "
                    "records"
                )
            self._events = list(events_from_records(records))
        return self._events

    def clean_ingest(self):
        """The fault-free quarantine-policy ingest of :meth:`events`."""
        from repro.telemetry.ingest import ErrorPolicy, IngestPipeline

        if self._clean_report is None:
            self._clean_report = IngestPipeline(
                ErrorPolicy.QUARANTINE
            ).run(list(self.events()))
        return self._clean_report

    # -- layer stages ----------------------------------------------------

    def telemetry(self) -> TelemetryOutcome:
        """Inject the plan's telemetry faults; account for every one."""
        from repro.telemetry.ingest import ErrorPolicy, IngestPipeline

        if self._telemetry is not None:
            return self._telemetry
        injection = inject_telemetry(self.events(), self.plan)
        faulted = IngestPipeline(ErrorPolicy.QUARANTINE).run(
            injection.events
        )
        clean = self.clean_ingest()
        changed = _multiset_delta(clean.records, faulted.records)
        touched = len(injection.corrupted_sessions)
        leaked = max(0, changed - touched)
        self._telemetry = TelemetryOutcome(
            injected=injection.total_injected,
            absorbed=injection.total_injected - leaked,
            leaked=leaked,
            touched_sessions=touched,
            changed_records=changed,
            quarantined=faulted.quarantined,
            deduped=faulted.deduped,
            clean_records=len(clean.records),
            faulted_records=len(faulted.records),
        )
        self._observe(Layer.TELEMETRY, self._telemetry.injected,
                      self._telemetry.absorbed, self._telemetry.leaked)
        return self._telemetry

    def delivery(self) -> DeliveryChaosResult:
        """Run the plan's CDN faults through the resilient fetcher."""
        if self._delivery is None:
            self._delivery = run_delivery_chaos(
                self.plan, self.assignments()
            )
            self._observe(
                Layer.DELIVERY,
                self._delivery.injected,
                self._delivery.absorbed,
                self._delivery.leaked,
            )
            for latency in self._delivery.recovery_latency.values():
                obs.histogram("chaos.breaker_recovery").observe(latency)
        return self._delivery

    def manifest(self) -> ManifestChaosResult:
        """Sweep corrupted manifests through the real parsers."""
        if self._manifest is None:
            self._manifest = run_manifest_chaos(self.plan)
            self._observe(
                Layer.MANIFEST,
                self._manifest.injected,
                self._manifest.absorbed + self._manifest.survived,
                self._manifest.leaked,
            )
        return self._manifest

    def ingest(self) -> IngestChaosResult:
        """Pressure the ingest pipeline per the plan."""
        if self._ingest is None:
            self._ingest = run_ingest_chaos(self.events(), self.plan)
            self._observe(
                Layer.INGEST,
                self._ingest.injected,
                self._ingest.absorbed,
                self._ingest.leaked,
            )
        return self._ingest

    def recovery(self) -> RecoveryOutcome:
        """Ingest under the plan's *recoverable* faults only.

        The resulting records must equal the fault-free replay exactly —
        the invariant behind the chaos-recovery differential oracle and
        the universal recovered-equals-fault-free contract.
        """
        from repro.telemetry.ingest import ErrorPolicy, IngestPipeline

        if self._recovery is None:
            injection = inject_telemetry(
                self.events(), self.plan.recoverable()
            )
            faulted = IngestPipeline(ErrorPolicy.QUARANTINE).run(
                injection.events
            )
            clean = self.clean_ingest()
            self._recovery = RecoveryOutcome(
                injection=injection,
                clean_records=tuple(clean.records),
                recovered_records=tuple(faulted.records),
                quarantined=faulted.quarantined,
                deduped=faulted.deduped,
            )
        return self._recovery

    # -- derived views ---------------------------------------------------

    def assignments(self) -> Tuple[CdnAssignment, ...]:
        """CDN assignments for the delivery timeline: every plan target
        plus enough healthy fallbacks that failover has somewhere to go.
        """
        names = list(self.plan.targets(Layer.DELIVERY))
        for fallback in _FALLBACK_CDNS:
            if len(names) >= len(self.plan.targets(Layer.DELIVERY)) + 2:
                break
            if fallback not in names:
                names.append(fallback)
        return tuple(CdnAssignment(cdn=CDN(name)) for name in names)

    def figure_rows_from(
        self, records: Sequence[object], label: str
    ) -> Dict[str, List[Dict[str, object]]]:
        """The scenario's figure set over a replayed record list.

        ``label`` keys the cache (e.g. ``"clean"`` / ``"recovered"``).
        """
        from repro import figures
        from repro.telemetry.dataset import Dataset

        cached = self._figure_rows.get(label)
        if cached is None:
            result = dataclasses.replace(
                self.scenario.result, dataset=Dataset(list(records))
            )
            cached = {
                figure_id: figures.run_figure(figure_id, result)
                for figure_id in self.spec.figures()
            }
            self._figure_rows[label] = cached
        return cached

    def ledger(self) -> Dict[str, Dict[str, int]]:
        """Per-layer injected/absorbed/leaked, for the report.

        Only layers the plan actually targets are materialized; an
        all-quiet plan yields an empty ledger rather than burning time
        exercising layers with nothing to inject.
        """
        out: Dict[str, Dict[str, int]] = {}
        layers = set(self.plan.layers())
        if Layer.TELEMETRY in layers:
            stage = self.telemetry()
            out["telemetry"] = {
                "injected": stage.injected,
                "absorbed": stage.absorbed,
                "leaked": stage.leaked,
            }
        if Layer.DELIVERY in layers:
            delivery = self.delivery()
            out["delivery"] = {
                "injected": delivery.injected,
                "absorbed": delivery.absorbed,
                "leaked": delivery.leaked,
            }
        if Layer.MANIFEST in layers:
            manifest = self.manifest()
            out["manifest"] = {
                "injected": manifest.injected,
                "absorbed": manifest.absorbed + manifest.survived,
                "leaked": manifest.leaked,
            }
        if Layer.INGEST in layers:
            ingest = self.ingest()
            out["ingest"] = {
                "injected": ingest.injected,
                "absorbed": ingest.absorbed,
                "leaked": ingest.leaked,
            }
        return out

    @staticmethod
    def _observe(
        layer: Layer, injected: int, absorbed: int, leaked: int
    ) -> None:
        for disposition, count in (
            ("injected", injected),
            ("absorbed", absorbed),
            ("leaked", leaked),
        ):
            if count:
                obs.counter(
                    "chaos.faults",
                    layer=layer.value,
                    disposition=disposition,
                ).inc(count)


def _multiset_delta(left: Sequence[object], right: Sequence[object]) -> int:
    """Records present in one list but not the other (multiset max-side)."""
    left_counts, right_counts = Counter(left), Counter(right)
    only_left = sum((left_counts - right_counts).values())
    only_right = sum((right_counts - left_counts).values())
    return max(only_left, only_right)


# ----------------------------------------------------------------------
# The degradation report
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioChaosReport:
    """One scenario's plan, fault ledger, and contract outcomes."""

    scenario: str
    plan: Dict[str, object]
    ledger: Dict[str, Dict[str, int]] = field(default_factory=dict)
    outcomes: Tuple[ContractOutcome, ...] = ()

    @property
    def ok(self) -> bool:
        return all(o.passed for o in self.outcomes)


@dataclass(frozen=True)
class DegradationReport:
    """All scenarios of one chaos run — the CI artifact."""

    reports: Tuple[ScenarioChaosReport, ...]

    @property
    def passed(self) -> int:
        return sum(
            1
            for r in self.reports
            for o in r.outcomes
            if o.status == "pass"
        )

    @property
    def failed(self) -> int:
        return sum(
            1
            for r in self.reports
            for o in r.outcomes
            if o.status == "fail"
        )

    @property
    def skipped(self) -> int:
        return sum(
            1
            for r in self.reports
            for o in r.outcomes
            if o.status == "skip"
        )

    @property
    def checks(self) -> int:
        return sum(o.checks for r in self.reports for o in r.outcomes)

    @property
    def ok(self) -> bool:
        """True when nothing failed and something actually passed."""
        return self.failed == 0 and self.passed > 0

    def failures(self) -> List[ContractOutcome]:
        return [
            o
            for r in self.reports
            for o in r.outcomes
            if o.status == "fail"
        ]

    def to_payload(self) -> Dict[str, object]:
        """The JSON-ready report body (deterministic ordering)."""
        return {
            "version": DEGRADATION_REPORT_VERSION,
            "scenarios": [
                {
                    "scenario": r.scenario,
                    "plan": r.plan,
                    "ledger": {
                        layer: dict(sorted(counts.items()))
                        for layer, counts in sorted(r.ledger.items())
                    },
                    "contracts": [
                        {
                            "contract": o.contract,
                            "status": o.status,
                            "checks": o.checks,
                            "detail": o.detail,
                        }
                        for o in sorted(
                            r.outcomes, key=lambda o: o.contract
                        )
                    ],
                }
                for r in sorted(self.reports, key=lambda r: r.scenario)
            ],
            "summary": {
                "pass": self.passed,
                "fail": self.failed,
                "skip": self.skipped,
                "checks": self.checks,
                "ok": self.ok,
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_payload(), indent=indent, sort_keys=True)

    def format_text(self) -> str:
        """An aligned text table plus a one-line verdict."""
        rows = []
        for report in sorted(self.reports, key=lambda r: r.scenario):
            for outcome in sorted(
                report.outcomes, key=lambda o: o.contract
            ):
                rows.append(
                    {
                        "scenario": report.scenario,
                        "contract": outcome.contract,
                        "status": outcome.status.upper(),
                        "checks": outcome.checks,
                    }
                )
        lines = [format_table(rows)] if rows else []
        for failure in self.failures():
            lines.append(
                f"FAIL {failure.scenario}/{failure.contract}: "
                f"{failure.detail}"
            )
        verdict = "OK" if self.ok else "FAILED"
        lines.append(
            f"{verdict}: {self.passed} passed, {self.failed} failed, "
            f"{self.skipped} skipped ({self.checks} checks)"
        )
        return "\n".join(lines)


def chaos_scenario_names() -> List[str]:
    """Scenarios that declare a chaos plan (the scenario zoo)."""
    return [
        name
        for name in scenario_names()
        if get_scenario(name).chaos_plan is not None
    ]


def run_chaos_scenario(spec: ScenarioSpec) -> ScenarioChaosReport:
    """All applicable contracts + the fault ledger for one scenario."""
    chaos_run = ChaosRun(spec)
    with obs.span("chaos.scenario", scenario=spec.name):
        outcomes = tuple(
            run_contract(target, chaos_run)
            for target in contracts_for(spec.name)
        )
        ledger = chaos_run.ledger()
    return ScenarioChaosReport(
        scenario=spec.name,
        plan=chaos_run.plan.to_payload(),
        ledger=ledger,
        outcomes=outcomes,
    )


def run_chaos(
    scenarios: Optional[Sequence[object]] = None,
) -> DegradationReport:
    """Run the chaos campaign (default: every plan-bearing scenario)."""
    if scenarios is None:
        specs = [get_scenario(name) for name in chaos_scenario_names()]
    else:
        specs = [
            get_scenario(item) if isinstance(item, str) else item
            for item in scenarios
        ]
    if not specs:
        raise ChaosError("no chaos scenarios to run")
    obs.gauge("chaos.scenarios").set(len(specs))
    return DegradationReport(
        reports=tuple(run_chaos_scenario(spec) for spec in specs)
    )
