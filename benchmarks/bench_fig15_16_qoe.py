"""Figs 15/16: owner vs syndicator QoE for the syndicated video."""

from benchmarks.conftest import run_and_save


def test_fig15_average_bitrate(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F15")
    assert len(rows) == 2  # (ISP X, CDN A) and (ISP Y, CDN B)
    for row in rows:
        # Paper: owner clients see ~2.5x the syndicator's median
        # average bitrate on both combinations.
        assert 1.8 < row["median_gain"] < 3.5
        assert row["owner_median_kbps"] > row["syndicator_median_kbps"]


def test_fig16_rebuffering(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F16")
    for row in rows:
        # Paper: ~40% lower rebuffering for owner clients at the 90th
        # percentile.
        assert row["p90_reduction"] > 0.15
        assert (
            row["owner_p90_rebuffer"] < row["syndicator_p90_rebuffer"]
        )
