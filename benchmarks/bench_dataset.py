"""Dataset backend benchmark: row-at-a-time vs columnar aggregation.

Times the hot dataset aggregations on both backends over a scaled-up
record set (default 10x the 6-snapshot build) and writes the timings
and speedups to ``BENCH_dataset.json`` at the repo root.  CI runs this
at small scale and fails the build if the columnar path is ever slower
than the row path (speedup < 1).  Run directly::

    PYTHONPATH=src python benchmarks/bench_dataset.py [--scale 10]

The headline numbers are **steady-state query** timings: one dataset
per backend, memoized aggregation results dropped between repeats, the
interned column store kept.  That mirrors real usage — the figures
pipeline builds one dataset and runs ~20 analyses against it, so code
interning is a one-time cost per store, not per query.  The one-time
encode cost is measured separately and recorded in the payload
(``first_call``) so the amortization is visible, not hidden.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from repro.synthesis.calibration import EcosystemConfig
from repro.synthesis.generator import EcosystemGenerator
from repro.telemetry.dataset import Dataset
from repro.telemetry.records import ViewRecord

BENCH_PATH = Path(__file__).parent.parent / "BENCH_dataset.json"

SEED = 2018
SNAPSHOT_LIMIT = 6

#: The acceptance floor for the two headline aggregations (ISSUE: >=5x
#: at 10x scale); every other op only has to not be slower.
HEADLINE_OPS = ("publisher_view_hours", "view_hours_by_snapshot")
HEADLINE_MIN_SPEEDUP = 5.0

#: First-call ceiling: interning must amortize, not tax — the cold
#: columnar aggregation may not exceed a cold row scan by more than
#: this factor (the allowance absorbs timer noise at small scales).
FIRST_CALL_MAX_RATIO = 1.15


def _base_records(scale: int) -> Tuple[ViewRecord, ...]:
    config = EcosystemConfig(seed=SEED, snapshot_limit=SNAPSHOT_LIMIT)
    records = EcosystemGenerator(config).generate().dataset.records
    return records * scale


def _ops() -> Dict[str, Callable[[Dataset], object]]:
    return {
        "publisher_view_hours": lambda d: d.publisher_view_hours(),
        "view_hours_by_snapshot": lambda d: d.view_hours_by("snapshot"),
        "views_by_publisher": lambda d: d.views_by("publisher_id"),
        "distinct_video_ids": lambda d: d.distinct_video_ids(),
        "snapshot_slice_totals": lambda d: [
            d.for_snapshot(s).total_view_hours() for s in d.snapshots()
        ],
    }


def _time_op(
    dataset: Dataset,
    op: Callable[[Dataset], object],
    repeats: int,
) -> float:
    """Best-of-N steady-state run.

    The warm-up call interns any columns the op needs (a no-op on the
    row backend); each timed repeat first drops the dataset's memoized
    aggregation results (``_init_caches``) so both backends recompute
    the answer — the row backend re-scans, the columnar backend
    re-aggregates over the already-interned store.
    """
    op(dataset)
    best = float("inf")
    for _ in range(repeats):
        dataset._init_caches()
        start = time.perf_counter()
        op(dataset)
        best = min(best, time.perf_counter() - start)
    return best


def _first_call_s(
    records: Tuple[ViewRecord, ...], columnar: bool, repeats: int
) -> float:
    """Cold cost of the first aggregation on a fresh dataset (for the
    columnar backend this includes code interning).

    Best of ``repeats`` fresh datasets: a single cold sample swings
    ~15% with scheduler noise, which is wider than the row-vs-columnar
    gap this number exists to track.
    """
    best = float("inf")
    for _ in range(repeats):
        dataset = Dataset(records, columnar=columnar)
        start = time.perf_counter()
        dataset.publisher_view_hours()
        best = min(best, time.perf_counter() - start)
    return best


def run_bench(scale: int, repeats: int) -> Dict[str, object]:
    records = _base_records(scale)
    row = Dataset(records, columnar=False)
    col = Dataset(records, columnar=True)
    results: Dict[str, Dict[str, float]] = {}
    for name, op in _ops().items():
        row_s = _time_op(row, op, repeats)
        col_s = _time_op(col, op, repeats)
        results[name] = {
            "row_s": round(row_s, 6),
            "columnar_s": round(col_s, 6),
            "speedup": round(row_s / col_s, 2) if col_s > 0 else 0.0,
        }
        print(
            f"{name:24s} row {row_s * 1e3:9.2f} ms   "
            f"columnar {col_s * 1e3:9.2f} ms   "
            f"{results[name]['speedup']:8.2f}x"
        )
    return {
        "meta": {
            "seed": SEED,
            "snapshot_limit": SNAPSHOT_LIMIT,
            "scale": scale,
            "records": len(records),
            "repeats": repeats,
        },
        "first_call": {
            "row_s": round(
                _first_call_s(records, columnar=False, repeats=repeats), 6
            ),
            "columnar_s": round(
                _first_call_s(records, columnar=True, repeats=repeats), 6
            ),
        },
        "operations": results,
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=int,
        default=10,
        help="record-set replication factor (default: 10)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed runs per (op, backend); best is kept (default: 3)",
    )
    parser.add_argument(
        "--out",
        default=str(BENCH_PATH),
        help=f"output JSON path (default: {BENCH_PATH})",
    )
    args = parser.parse_args(argv)
    if args.scale < 1 or args.repeats < 1:
        parser.error("--scale and --repeats must be >= 1")

    payload = run_bench(args.scale, args.repeats)
    Path(args.out).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {args.out}")

    failures = []
    for name, stats in payload["operations"].items():
        floor = (
            HEADLINE_MIN_SPEEDUP
            if name in HEADLINE_OPS and args.scale >= 10
            else 1.0
        )
        if stats["speedup"] < floor:
            failures.append(f"{name}: {stats['speedup']}x < {floor}x")
    first = payload["first_call"]
    if first["columnar_s"] > first["row_s"] * FIRST_CALL_MAX_RATIO:
        failures.append(
            f"first_call: columnar {first['columnar_s']}s > "
            f"{FIRST_CALL_MAX_RATIO}x row {first['row_s']}s"
        )
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
