"""Fig 5: the platform/device taxonomy."""

from benchmarks.conftest import run_and_save


def test_fig5_taxonomy(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F5")
    platforms = {row["platform"] for row in rows}
    # The five Fig 5 platform categories.
    assert platforms == {
        "Browser",
        "Mobile app",
        "Set-top box",
        "Smart TV",
        "Game console",
    }
    families = {row["family"] for row in rows}
    assert {"roku", "html5", "flash", "ios", "android"} <= families
