"""Fig 13: complexity metrics versus publisher view-hours."""

from benchmarks.conftest import run_and_save, save_lines
from repro.core.complexity import fit_complexity, publisher_complexity


def test_fig13_slopes(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F13")
    by_metric = {row["metric"]: row for row in rows}
    combos = by_metric["management-plane combinations"]
    titles = by_metric["protocol-titles"]
    sdks = by_metric["unique SDKs"]
    # Paper: 1.72x / 3.8x / 1.8x per view-hour decade, all sub-linear
    # (factor < 10), all statistically significant (p < 1e-9).
    assert 1.4 < combos["per_decade_factor"] < 2.4
    assert 3.0 < titles["per_decade_factor"] < 4.6
    assert 1.4 < sdks["per_decade_factor"] < 2.2
    for row in (combos, titles, sdks):
        assert row["per_decade_factor"] < 10.0
        assert row["p_value"] < 1e-9
    biggest = by_metric["max unique SDKs"]["per_decade_factor"]
    assert 50 <= biggest <= 130  # paper: up to 85 code bases


def test_fig13_fit_cost(benchmark, eco_full):
    """Time the full metric extraction + three regressions."""

    def run():
        metrics = publisher_complexity(
            eco_full.dataset.latest(), eco_full.catalogue_sizes
        )
        return fit_complexity(metrics)

    fits = benchmark(run)
    assert fits.all_sublinear()
    save_lines(
        "F13_fits",
        [
            "Fig 13 log-log fits (paper: 1.72x / 3.8x / 1.8x per decade):",
            f"  combinations:    {fits.combinations.per_decade_factor:.2f}x"
            f" (r2={fits.combinations.r_squared:.2f})",
            f"  protocol-titles: {fits.protocol_titles.per_decade_factor:.2f}x"
            f" (r2={fits.protocol_titles.r_squared:.2f})",
            f"  unique SDKs:     {fits.unique_sdks.per_decade_factor:.2f}x"
            f" (r2={fits.unique_sdks.r_squared:.2f})",
        ],
    )
