"""Figs 2a-2c and the §4.1 RTMP numbers: streaming-protocol prevalence."""

from benchmarks.conftest import run_and_save
from repro.constants import Protocol
from repro.core.dimensions import ProtocolDimension
from repro.core.prevalence import first_last, publisher_support_series


def test_fig2a_publisher_support(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F2a")
    latest = rows[-1]
    # Paper: HLS 91%, DASH 43%, MSS ~40%, HDS 19% at the last snapshot.
    assert latest["HLS"] > 85
    assert 33 < latest["DASH"] < 55
    assert latest["HDS"] < 30


def test_fig2b_view_hour_shares(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F2b")
    first, latest = rows[0], rows[-1]
    # Paper: DASH view-hours grow 3% -> 38%; HLS and DASH dominant.
    assert first["DASH"] < 10
    assert latest["DASH"] > 25
    assert latest["HLS"] + latest["DASH"] > 70


def test_fig2c_excluding_dash_drivers(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F2c")
    # Paper: without the drivers, DASH stays under ~5% of view-hours.
    assert rows[-1]["DASH"] < 12


def test_s41_rtmp_decline(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "S41R")
    first = next(r for r in rows if r["snapshot"] == "first")
    latest = next(r for r in rows if r["snapshot"] == "latest")
    # Paper: 1.6% -> 0.1% of view-hours.
    assert first["rtmp_pct"] > latest["rtmp_pct"]
    assert latest["rtmp_pct"] < 0.5


def test_dash_support_growth_direction(benchmark, dataset_full):
    series = benchmark.pedantic(
        publisher_support_series,
        args=(dataset_full, ProtocolDimension(http_only=False)),
        rounds=1,
        iterations=1,
    )
    start, end = first_last(series, Protocol.DASH)
    assert end > start + 15  # paper: 10% -> 43%
