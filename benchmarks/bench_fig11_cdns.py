"""Figs 11a-11b: CDN prevalence across publishers and view-hours."""

from benchmarks.conftest import run_and_save, save_lines
from repro.core.summary import top_cdn_concentration


def test_fig11a_publisher_share(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F11a")
    latest = rows[-1]
    # Paper: CDN A used by ~80% of publishers, C ~30%, B ~25%; shares
    # roughly steady over time.
    assert latest["A"] > 70
    assert latest["A"] > latest["B"]
    assert latest["A"] > latest["C"]
    first = rows[0]
    assert abs(first["A"] - latest["A"]) < 15


def test_fig11b_view_hour_share(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F11b")
    first, latest = rows[0], rows[-1]
    # Paper: A's dominance erodes; A, B and C end at comparable 20-35%.
    assert latest["A"] < first["A"]
    for name in ("A", "B", "C"):
        assert 15 < latest[name] < 45
    for name in ("D", "E"):
        assert latest[name] < 10


def test_top5_concentration(benchmark, eco_full):
    concentration = benchmark.pedantic(
        top_cdn_concentration,
        args=(eco_full.dataset.latest(),),
        rounds=1,
        iterations=1,
    )
    # Paper: 5 of 36 CDNs serve >93% of view-hours.
    assert concentration > 90
    save_lines(
        "F11_concentration",
        [
            "Top-5 CDN view-hour concentration "
            f"(paper >93%): {concentration:.1f}%"
        ],
    )
