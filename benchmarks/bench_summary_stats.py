"""§4.3/§4.4 prose statistics: the roll-up numbers the paper quotes."""

from benchmarks.conftest import run_and_save


def test_s44_summary(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "S44")
    by_dim = {row["dimension"]: row for row in rows}
    # Paper §4.4: weighted averages 2.2 protocols / 4.5 platforms /
    # 4.5 CDNs; >90% of view-hours from multi-instance publishers.
    assert 1.8 < by_dim["protocols"]["weighted_avg_count"] < 3.0
    assert 4.0 < by_dim["platforms"]["weighted_avg_count"] < 5.0
    assert 3.8 < by_dim["cdns"]["weighted_avg_count"] < 5.0
    for name in ("protocols", "platforms", "cdns"):
        assert by_dim[name]["pct_vh_multi_instance"] > 85
    assert by_dim["top-5 CDN view-hour share"]["avg_count"] > 90


def test_s43_live_vod_segregation(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "S43L")
    by_stat = {row["stat"]: row for row in rows}
    # Paper: 30% of multi-CDN live+VoD publishers keep a VoD-only CDN;
    # 19% keep a live-only CDN.
    assert 12 < by_stat["vod-only CDN"]["measured_pct"] < 55
    assert 5 < by_stat["live-only CDN"]["measured_pct"] < 45
