"""Figs 6a-6c: platform view-hour and view shares over time."""

from benchmarks.conftest import run_and_save


def test_fig6a_view_hours(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F6a")
    first, latest = rows[0], rows[-1]
    # Paper: browsers fall from ~60% to <25%; set-tops lead with ~40%.
    assert first["Browser"] > 45
    assert latest["Browser"] < 35
    assert latest["Set-top box"] == max(
        latest[k] for k in latest if k != "snapshot"
    )
    assert latest["Smart TV"] < 10


def test_fig6b_excluding_top3(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F6b")
    latest = rows[-1]
    # Paper: without the three largest publishers, mobile app viewing
    # surpasses the other platforms and set-top growth is slower.
    assert latest["Mobile app"] >= latest["Set-top box"] - 6
    assert latest["Mobile app"] >= latest["Browser"] - 6


def test_fig6c_views(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F6c")
    latest_views = rows[-1]["Set-top box"]
    # Paper: set-top views reach ~20% while view-hours reach ~40% —
    # views lag because set-top views are long.
    assert 10 < latest_views < 32
