"""Dataset-generation and persistence benchmarks.

Times the ecosystem generator at test scale and the JSONL round-trip —
the two substrate costs every analysis pays before it starts.
"""

from benchmarks.conftest import save_lines
from repro.synthesis.calibration import EcosystemConfig
from repro.synthesis.generator import EcosystemGenerator
from repro.telemetry.dataset import Dataset


def test_generation_small(benchmark):
    config = EcosystemConfig(
        seed=3, snapshot_limit=4, n_publishers=60, include_case_study=False
    )

    def generate():
        return EcosystemGenerator(config).generate()

    result = benchmark.pedantic(generate, rounds=1, iterations=1)
    assert len(result.dataset) > 1000
    save_lines(
        "generator_small",
        [
            "4-snapshot, 60-publisher build:",
            f"  records: {len(result.dataset)}",
        ],
    )


def test_dataset_save_load(benchmark, eco_full, tmp_path):
    sample = Dataset(eco_full.dataset.records[:20_000])
    path = tmp_path / "sample.jsonl.gz"

    def roundtrip():
        sample.save(path)
        return Dataset.load(path)

    loaded = benchmark.pedantic(roundtrip, rounds=1, iterations=1)
    assert len(loaded) == len(sample)
