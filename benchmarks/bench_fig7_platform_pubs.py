"""Fig 7: % of publishers supporting each platform over time."""

from benchmarks.conftest import run_and_save


def test_fig7_platform_support(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F7")
    first, latest = rows[0], rows[-1]
    # Paper: set-top and smart-TV support grow from under 20% to above
    # 50%/60%; browsers and mobile near-universal.
    assert first["Set-top box"] < 30
    assert latest["Set-top box"] > 45
    assert first["Smart TV"] < 30
    assert latest["Smart TV"] > 50
    assert latest["Browser"] > 90
    assert latest["Mobile app"] > 85
