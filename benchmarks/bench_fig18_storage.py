"""Fig 18: CDN origin-storage savings under syndication models."""

import pytest

from benchmarks.conftest import run_and_save, save_lines
from repro.core.storage import tolerance_sweep


def test_fig18_savings(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F18")
    assert len(rows) == 2  # CDNs A and B
    for row in rows:
        # Paper: 1916 TB total; 316.1 TB (16.5%) saved at 5% tolerance,
        # 865 TB (45.2%) at 10%, 1257 TB (65.6%) integrated.
        assert row["total_tb"] == pytest.approx(1916, rel=0.05)
        assert row["saved_pct_5pct"] == pytest.approx(16.5, abs=1.5)
        assert row["saved_pct_10pct"] == pytest.approx(45.2, abs=1.5)
        assert row["saved_pct_integrated"] == pytest.approx(65.6, abs=1.0)
        assert row["saved_tb_5pct"] == pytest.approx(316.1, rel=0.08)
        assert row["saved_tb_10pct"] == pytest.approx(865.0, rel=0.08)
        assert row["saved_tb_integrated"] == pytest.approx(1257.0, rel=0.05)


def test_fig18_tolerance_sweep_extension(benchmark, eco_full):
    """Ablation: savings as a function of dedup tolerance (0-20%)."""
    sweep = benchmark.pedantic(
        tolerance_sweep, args=(eco_full.case_study,), rounds=1, iterations=1
    )
    percentages = [pct for _, pct in sweep]
    assert percentages[0] == pytest.approx(0.0, abs=0.1)
    assert percentages[-1] > 30
    save_lines(
        "F18_sweep",
        ["Dedup savings vs tolerance (extends the paper's 5%/10% points):"]
        + [
            f"  tolerance {tolerance * 100:4.1f}%: {pct:5.1f}% saved"
            for tolerance, pct in sweep
        ],
    )
