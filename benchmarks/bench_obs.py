"""Observability benchmark: span timings for the whole pipeline.

Runs the generate -> ingest -> figures pipeline once with the obs
layer enabled and writes the per-stage span rollup to
``BENCH_obs.json`` at the repo root — the perf-trajectory artifact CI
uploads so stage regressions across PRs diff like-for-like.  A second
test bounds the disabled-path overhead: with obs off, the instrumented
pipeline must record nothing.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.conftest import save_lines
from repro import figures, obs
from repro.synthesis.calibration import EcosystemConfig
from repro.synthesis.generator import EcosystemGenerator
from repro.telemetry.faults import FaultInjector, FaultMix
from repro.telemetry.ingest import IngestPipeline, events_from_records

BENCH_PATH = Path(__file__).parent.parent / "BENCH_obs.json"

CONFIG = EcosystemConfig(seed=2018, snapshot_limit=6)
FIGURES = ("F2a", "F13", "S44")


def _run_pipeline():
    result = EcosystemGenerator(CONFIG).generate()
    records = [
        r
        for r in result.dataset.records
        if r.view_duration_hours > 0 and r.rebuffer_ratio < 1.0
    ][:200]
    events = FaultInjector(FaultMix.uniform(0.2), seed=7).apply(
        list(events_from_records(records))
    )
    report = IngestPipeline(
        "quarantine", metrics=obs.metrics()
    ).run(events)
    rows = {fid: figures.run_figure(fid, result) for fid in FIGURES}
    return result, report, rows


def test_pipeline_spans_to_bench_obs(benchmark):
    ctx = obs.configure(enabled=True)
    ctx.reset()
    try:
        result, report, rows = benchmark.pedantic(
            _run_pipeline, rounds=1, iterations=1
        )
        payload = obs.bench_payload(
            ctx.tracer.finished,
            registry=ctx.registry,
            meta={
                "seed": CONFIG.seed,
                "snapshot_limit": CONFIG.snapshot_limit,
                "figures": list(FIGURES),
            },
        )
        # Read the report before the reset below zeroes the shared
        # instruments it aliases.
        total_events = report.total_events
    finally:
        ctx.configure(enabled=False)
        ctx.reset()

    BENCH_PATH.write_text(obs.to_json(payload))
    stages = payload["stages"]
    assert "synthesis.generate" in stages
    assert "ingest.batch" in stages
    assert stages["figure.run"]["calls"] == len(FIGURES)
    assert total_events > 0
    assert all(rows.values())
    save_lines(
        "obs_pipeline",
        [f"wrote {BENCH_PATH.name} with {len(stages)} stages:"]
        + [
            f"  {name}: calls={int(stage['calls'])} "
            f"total={stage['total_s']:.3f}s"
            for name, stage in sorted(stages.items())
        ],
    )
    # The artifact must parse back and keep its schema marker.
    assert json.loads(BENCH_PATH.read_text())["schema"] == 1


def test_disabled_path_records_nothing(benchmark):
    """Obs off (the default) must leave zero trace of the run."""
    ctx = obs.get_context()
    assert not ctx.enabled
    before_spans = len(ctx.tracer.finished)

    config = EcosystemConfig(
        seed=3, snapshot_limit=2, n_publishers=24, records_scale=0.2,
        qoe_sessions=10,
    )
    result = benchmark.pedantic(
        EcosystemGenerator(config).generate, rounds=1, iterations=1
    )
    assert len(result.dataset) > 100
    assert len(ctx.tracer.finished) == before_spans
