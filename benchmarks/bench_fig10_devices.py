"""Figs 10a-10c: within-platform device-family trends."""

from benchmarks.conftest import run_and_save


def test_fig10a_browser_players(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F10a")
    first, latest = rows[0], rows[-1]
    # Paper: HTML5 rises ~25% -> ~60% of browser view-hours; Flash
    # declines modestly (60% -> 40%) rather than collapsing.
    assert latest["html5"] > first["html5"] + 15
    assert latest["flash"] < first["flash"]
    assert latest["flash"] > 20
    assert latest["silverlight"] < first["silverlight"] + 2


def test_fig10b_mobile_oses(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F10b")
    first, latest = rows[0], rows[-1]
    # Paper: Android grows to comparable viewership with iOS.
    assert latest["android"] > first["android"]
    assert abs(latest["android"] - latest["ios"]) < 20


def test_fig10c_set_tops(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F10c")
    latest = rows[-1]
    # Paper: Roku dominant; AppleTV and FireTV non-negligible.
    families = {k: v for k, v in latest.items() if k != "snapshot"}
    assert max(families, key=families.get) == "roku"
    assert latest["appletv"] > 5
    assert latest["firetv"] > 5
