"""End-to-end pipeline benchmark: serial vs process-pool execution.

Times the full generate -> ingest -> figures -> testkit chain once at
``--jobs 1`` and once at ``--jobs N`` (default: up to 4 workers) and
writes per-stage wall-clock plus the overall speedup to
``BENCH_pipeline.json`` at the repo root.  Run directly::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--jobs 4]

Two things are asserted on every run, regardless of core count:

* **Byte identity.**  The figure suite rows and the testkit oracle
  report produced by the parallel run must hash identically to the
  serial run.  This is the cheap standing check that the
  :mod:`repro.parallel` seed-spawn and chunking disciplines hold on
  real workloads, not just in unit tests.
* **Honest speedup accounting.**  ``meta.cpu_count`` is recorded next
  to the speedup; a 1-core box legitimately reports ~1.0x (pool
  overhead included), so the optional ``--min-speedup`` gate is only
  meant for CI runners with real parallelism.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro import figures
from repro.synthesis.calibration import EcosystemConfig
from repro.synthesis.generator import EcosystemGenerator
from repro.telemetry.backend import TelemetryBackend
from repro.telemetry.ingest import events_from_records
from repro.testkit.report import run_matrix

BENCH_PATH = Path(__file__).parent.parent / "BENCH_pipeline.json"

SEED = 2018

#: Scenario subset for the testkit stage: the fastest full-chain
#: scenario plus the fault-injection one, times every oracle.
SCENARIOS = ("tiny", "fault-heavy")

#: Ingest stage size: enough sessions to be visible in the totals
#: without dwarfing the parallelizable stages.
INGEST_SESSIONS = 500


def _digest(*parts: str) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
    return digest.hexdigest()


def run_pipeline(
    config: EcosystemConfig, jobs: int
) -> Tuple[Dict[str, float], str]:
    """One full chain at the given worker count.

    Returns per-stage wall-clock seconds and a fingerprint of every
    stage's output (figure rows + oracle report), which must not
    depend on ``jobs``.
    """
    timings: Dict[str, float] = {}

    start = time.perf_counter()
    result = EcosystemGenerator(config).generate(jobs=jobs)
    timings["generate"] = time.perf_counter() - start

    start = time.perf_counter()
    suite = figures.run_suite(config, jobs=jobs)
    timings["figures"] = time.perf_counter() - start

    start = time.perf_counter()
    records = [
        r
        for r in result.dataset.records
        if r.view_duration_hours > 0 and r.rebuffer_ratio < 1.0
    ][:INGEST_SESSIONS]
    events = list(events_from_records(records))
    report = TelemetryBackend().ingest_events(events, policy="quarantine")
    timings["ingest"] = time.perf_counter() - start

    start = time.perf_counter()
    oracle_report = run_matrix(scenarios=list(SCENARIOS), jobs=jobs)
    timings["testkit"] = time.perf_counter() - start

    timings["total"] = sum(timings.values())
    fingerprint = _digest(
        f"records={len(result.dataset)}",
        repr(sorted(result.dataset.publisher_view_hours().items())),
        repr(sorted(suite.items())),
        f"ingested={report.accepted}",
        oracle_report.to_json(),
    )
    return timings, fingerprint


def run_bench(jobs: int, config: EcosystemConfig) -> Dict[str, object]:
    serial, serial_print = run_pipeline(config, jobs=1)
    parallel, parallel_print = run_pipeline(config, jobs=jobs)
    if serial_print != parallel_print:
        raise AssertionError(
            f"parallel pipeline diverged from serial: "
            f"{parallel_print} != {serial_print}"
        )
    stages = {}
    for stage in ("generate", "figures", "ingest", "testkit", "total"):
        stages[stage] = {
            "serial_s": round(serial[stage], 3),
            "parallel_s": round(parallel[stage], 3),
            "speedup": (
                round(serial[stage] / parallel[stage], 2)
                if parallel[stage] > 0
                else 0.0
            ),
        }
        print(
            f"{stage:10s} jobs=1 {serial[stage]:7.2f} s   "
            f"jobs={jobs} {parallel[stage]:7.2f} s   "
            f"{stages[stage]['speedup']:6.2f}x"
        )
    return {
        "meta": {
            "seed": SEED,
            "snapshot_limit": config.snapshot_limit,
            "n_publishers": config.n_publishers,
            "jobs": jobs,
            "cpu_count": os.cpu_count(),
            "scenarios": list(SCENARIOS),
            "byte_identical": True,
            "fingerprint": serial_print,
        },
        "stages": stages,
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs",
        type=int,
        default=min(4, os.cpu_count() or 1),
        help="parallel worker count to benchmark against serial",
    )
    parser.add_argument(
        "--snapshots",
        type=int,
        default=4,
        help="generator snapshot limit (default: 4)",
    )
    parser.add_argument(
        "--publishers",
        type=int,
        default=60,
        help="generator population size (default: 60)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help=(
            "fail unless total speedup reaches this factor "
            "(only meaningful on multi-core runners; default: no gate)"
        ),
    )
    parser.add_argument(
        "--out",
        default=str(BENCH_PATH),
        help=f"output JSON path (default: {BENCH_PATH})",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    config = EcosystemConfig(
        seed=SEED,
        snapshot_limit=args.snapshots,
        n_publishers=args.publishers,
    )
    payload = run_bench(args.jobs, config)
    Path(args.out).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {args.out}")

    total = payload["stages"]["total"]["speedup"]
    if args.min_speedup and total < args.min_speedup:
        print(
            f"FAIL: total speedup {total}x < {args.min_speedup}x "
            f"(cpu_count={os.cpu_count()})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
