"""Figs 9a-9c: number of platforms per publisher."""

from benchmarks.conftest import run_and_save


def test_fig9a_count_distribution(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F9a")
    multi_pubs = sum(
        row["percent_publishers"] for row in rows if row["platforms"] > 1
    )
    multi_vh = sum(
        row["percent_view_hours"] for row in rows if row["platforms"] > 1
    )
    # Paper: >85% of publishers and >95% of view-hours are
    # multi-platform; ~30% of publishers support all five.
    assert multi_pubs > 80
    assert multi_vh > 90
    all_five = next((r for r in rows if r["platforms"] == 5), None)
    assert all_five is not None
    assert all_five["percent_publishers"] > 15
    assert all_five["percent_view_hours"] > 50


def test_fig9b_bucketed(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F9b")
    # Largest buckets are dominated by 4-5 platform publishers.
    top_bucket = rows[-1]["count_histogram"]
    assert min(top_bucket) >= 3


def test_fig9c_trend(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F9c")
    # Paper: both averages grow substantially (48%/37%); the weighted
    # average approaches 4.5 by the latest snapshot.
    assert rows[-1]["average"] > rows[0]["average"] * 1.2
    assert rows[-1]["weighted_average"] > 4.0
