"""T1 — Table 1: manifest-extension protocol detection.

Regenerates the extension table and micro-benchmarks the detector over
the full dataset's URLs (the §3 methodology applies it to every view).
"""

from benchmarks.conftest import run_and_save, save_lines
from repro.core.dimensions import record_protocol


def test_table1_extension_mapping(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "T1")
    assert all(row["protocol"] == row["detected"] for row in rows)


def test_detection_throughput_over_dataset(benchmark, dataset_full):
    urls = [record.url for record in dataset_full.records[:50_000]]

    def classify_all():
        from repro.packaging.manifest.detect import detect_protocol_or_none

        return sum(
            1 for url in urls if detect_protocol_or_none(url) is not None
        )

    classified = benchmark(classify_all)
    assert classified == len(urls)  # every synthetic URL classifiable
    save_lines(
        "T1_throughput",
        [
            "Table 1 detector over dataset URLs:",
            f"  urls classified: {classified}/{len(urls)}",
        ],
    )
