"""Fig 14: prevalence of content syndication."""

from benchmarks.conftest import run_and_save, save_lines
from repro.core.syndication import prevalence_summary


def test_fig14_cdf(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F14")
    cdf_rows = [row for row in rows if row["pct_syndicators"] >= 0]
    values = [row["cdf"] for row in cdf_rows]
    assert values == sorted(values)
    assert values[-1] == 1.0


def test_fig14_headline_numbers(benchmark, eco_full):
    summary = benchmark.pedantic(
        prevalence_summary, args=(eco_full.dataset,), rounds=1, iterations=1
    )
    # Paper: >80% of owners use at least one syndicator; ~20% of owners
    # reach a third of all full syndicators.
    assert summary["pct_owners_with_syndicator"] > 70
    assert 8 < summary["pct_owners_third_of_syndicators"] < 45
    save_lines(
        "F14_summary",
        [
            "Fig 14 prevalence (paper: >80% / ~20%):",
            "  owners with >=1 syndicator: "
            f"{summary['pct_owners_with_syndicator']:.1f}%",
            "  owners reaching 1/3 of syndicators: "
            f"{summary['pct_owners_third_of_syndicators']:.1f}%",
        ],
    )
