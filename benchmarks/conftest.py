"""Benchmark fixtures.

``eco_full`` is the full-fidelity dataset: all 59 bi-weekly snapshots
of the 27-month study window, generated once per benchmark session
(~1 minute).  Every per-figure benchmark times its analysis with
``benchmark.pedantic(rounds=1)`` — these are second-scale analytical
jobs, not microbenchmarks — and writes the regenerated figure rows to
``benchmarks/output/<id>.txt`` so the paper-vs-measured comparison is
inspectable after the run.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Mapping, Sequence

import pytest

from repro import figures
from repro.core.report import format_table
from repro.synthesis.generator import EcosystemResult, generate_default_dataset

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def eco_full() -> EcosystemResult:
    """The full 59-snapshot synthetic dataset (generated once)."""
    return generate_default_dataset(seed=2018, snapshot_limit=0)


@pytest.fixture(scope="session")
def dataset_full(eco_full):
    return eco_full.dataset


def run_and_save(benchmark, eco: EcosystemResult, figure_id: str):
    """Time one registered figure and persist its rows."""
    rows = benchmark.pedantic(
        figures.run_figure, args=(figure_id, eco), rounds=1, iterations=1
    )
    save_rows(figure_id, rows)
    return rows


def save_rows(
    name: str, rows: Sequence[Mapping[str, object]], header: str = ""
) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    title = header or (
        f"{name}: {figures.describe(name)}"
        if name in figures.figure_ids()
        else name
    )
    text = f"== {title} ==\n{format_table(list(rows))}\n"
    (OUTPUT_DIR / f"{name}.txt").write_text(text)


def save_lines(name: str, lines: List[str]) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text("\n".join(lines) + "\n")
