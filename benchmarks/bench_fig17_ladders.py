"""Fig 17: bitrate-ladder divergence between owner and syndicators."""

from benchmarks.conftest import run_and_save


def test_fig17_ladders(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F17")
    by_label = {row["label"]: row for row in rows}
    assert set(by_label) == {"O"} | {f"S{i}" for i in range(1, 11)}
    # Paper: the owner offers 9 bitrates with the top rung past
    # 8192 kbps; S2 uses only 3 rungs; S9 uses 14; S1's top rung is
    # ~7x below the owner's, a little above 1024 kbps.
    assert by_label["O"]["rungs"] == 9
    assert by_label["O"]["max_kbps"] > 8192
    assert by_label["S2"]["rungs"] == 3
    assert by_label["S9"]["rungs"] == 14
    ratio = by_label["O"]["max_kbps"] / by_label["S1"]["max_kbps"]
    assert 6.5 < ratio < 8.5
    assert 1024 < by_label["S1"]["max_kbps"] < 1300
