"""Fig 4: CDF across publishers of DASH/HLS view-hour share."""

from benchmarks.conftest import run_and_save, save_lines
from repro.core.protocol_share import supporter_medians
from repro.constants import Protocol


def test_fig4_share_cdfs(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F4")
    dash = [r for r in rows if r["protocol"] == "DASH"]
    hls = [r for r in rows if r["protocol"] == "HLS"]
    assert dash and hls


def test_fig4_medians(benchmark, eco_full):
    medians = benchmark.pedantic(
        supporter_medians,
        args=(eco_full.dataset.latest(),),
        rounds=1,
        iterations=1,
    )
    # Paper: half of HLS supporters put >=85% of view-hours on HLS;
    # half of DASH supporters put <=20% on DASH.
    assert medians[Protocol.HLS] > 65
    assert medians[Protocol.DASH] < 25
    save_lines(
        "F4_medians",
        ["Fig 4 medians (paper: HLS >= 85, DASH <= 20):"]
        + [
            f"  {protocol.display_name}: {value:.1f}%"
            for protocol, value in medians.items()
        ],
    )
