"""Ablations for the design choices DESIGN.md calls out.

1. Record weighting: weighted records vs exploded unit views — the
   analyses must be invariant, and the weighted form much cheaper.
2. Snapshot cadence: bi-weekly vs monthly sampling of the trends.
3. ABR algorithm: the Fig 15/16 QoE gap must persist across ABRs
   (it is a ladder effect, not an ABR artifact).
"""

import numpy as np
import pytest

from benchmarks.conftest import save_lines
from repro.core.dimensions import ProtocolDimension
from repro.core.prevalence import first_last, view_hour_share_series
from repro.constants import Protocol
from repro.delivery.network import default_isp_profiles
from repro.entities.ladder import BitrateLadder
from repro.playback.abr import BufferBasedAbr, ThroughputAbr
from repro.playback.session import SessionConfig, simulate_session
from repro.synthesis import calibration as cal
from repro.telemetry.dataset import Dataset


def test_ablation_weighting_invariance(benchmark, eco_full):
    """Weighted analysis equals exploded analysis (on a capped slice)."""
    latest = eco_full.dataset.latest()
    capped = Dataset(
        [
            type(record).from_json_dict(
                {
                    **record.to_json_dict(),
                    "weight": max(1.0, round(min(record.weight, 20))),
                }
            )
            for record in latest.records[:800]
        ]
    )
    exploded = capped.explode()

    weighted_series = benchmark.pedantic(
        view_hour_share_series,
        args=(capped, ProtocolDimension()),
        rounds=1,
        iterations=1,
    )
    exploded_series = view_hour_share_series(exploded, ProtocolDimension())
    snapshot = capped.latest_snapshot()
    for key, value in weighted_series[snapshot].items():
        assert exploded_series[snapshot][key] == pytest.approx(value)
    save_lines(
        "ablation_weighting",
        [
            "Weighted vs exploded records:",
            f"  weighted records: {len(capped)}",
            f"  exploded records: {len(exploded)}",
            "  protocol shares identical: yes",
        ],
    )


def test_ablation_snapshot_cadence(benchmark, eco_full):
    """Monthly (every other) snapshots preserve the trend endpoints."""
    dataset = eco_full.dataset
    snapshots = dataset.snapshots()
    monthly = set(snapshots[::2]) | {snapshots[-1]}
    thinned = dataset.filter(lambda r: r.snapshot in monthly)

    full_series = view_hour_share_series(
        dataset, ProtocolDimension(http_only=False)
    )
    thinned_series = benchmark.pedantic(
        view_hour_share_series,
        args=(thinned, ProtocolDimension(http_only=False)),
        rounds=1,
        iterations=1,
    )
    for protocol in (Protocol.HLS, Protocol.DASH):
        full_start, full_end = first_last(full_series, protocol)
        thin_start, thin_end = first_last(thinned_series, protocol)
        assert thin_start == pytest.approx(full_start, abs=1e-9)
        assert thin_end == pytest.approx(full_end, abs=1e-9)
    save_lines(
        "ablation_cadence",
        [
            "Bi-weekly vs monthly snapshot cadence:",
            f"  bi-weekly snapshots: {len(snapshots)}",
            f"  monthly snapshots:   {len(monthly)}",
            "  trend endpoints identical: yes",
        ],
    )


def test_ablation_qoe_gap_across_abrs(benchmark):
    """The owner-vs-syndicator bitrate gap persists for both ABRs."""
    owner = BitrateLadder.from_bitrates(cal.CASE_STUDY_LADDERS["O"])
    syndicator = BitrateLadder.from_bitrates(cal.CASE_STUDY_LADDERS["S7"])
    path = default_isp_profiles()["X"].path_to("A")
    config = SessionConfig(
        view_seconds=900.0, chunk_seconds=6.0, max_buffer_seconds=20.0
    )

    def gap_for(abr):
        rng = np.random.default_rng(5)
        means = [path.sample_session_mean(rng) for _ in range(120)]
        owner_rates = [
            simulate_session(
                owner, path, config, rng, abr=abr, session_mean_kbps=m
            ).average_bitrate_kbps
            for m in means
        ]
        syn_rates = [
            simulate_session(
                syndicator, path, config, rng, abr=abr, session_mean_kbps=m
            ).average_bitrate_kbps
            for m in means
        ]
        return float(np.median(owner_rates) / np.median(syn_rates))

    throughput_gap = benchmark.pedantic(
        gap_for, args=(ThroughputAbr(safety=0.85),), rounds=1, iterations=1
    )
    buffer_gap = gap_for(BufferBasedAbr())
    # The gap is a ladder effect: both ABR families show it.
    assert throughput_gap > 1.5
    assert buffer_gap > 1.5
    save_lines(
        "ablation_abr",
        [
            "Owner/syndicator median bitrate gap by ABR (paper: ~2.5x):",
            f"  throughput-based: {throughput_gap:.2f}x",
            f"  buffer-based:     {buffer_gap:.2f}x",
        ],
    )
