"""Figs 12a-12c: number of CDNs per publisher."""

from benchmarks.conftest import run_and_save


def test_fig12a_count_distribution(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F12a")
    by_count = {row["cdns"]: row for row in rows}
    # Paper: >40% single-CDN publishers with <5% of view-hours; 4-5 CDN
    # publishers carry ~80% of view-hours.
    assert by_count[1]["percent_publishers"] > 25
    assert by_count[1]["percent_view_hours"] < 5
    heavy = sum(
        row["percent_view_hours"] for row in rows if row["cdns"] >= 4
    )
    assert heavy > 60
    assert max(by_count) <= 5


def test_fig12b_bucketed(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F12b")
    # Paper: the smallest bucket uses a single CDN; the largest uses at
    # least 4.
    smallest = rows[0]["count_histogram"]
    if smallest:
        assert set(smallest) == {1}
    largest = rows[-1]["count_histogram"]
    assert min(largest) >= 4


def test_fig12c_trend(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F12c")
    # Paper: plain average a bit above 2; weighted average near 4.5 and
    # growing much faster.
    assert 1.7 < rows[-1]["average"] < 3.0
    assert rows[-1]["weighted_average"] > 3.8
    assert (
        rows[-1]["weighted_average"] - rows[0]["weighted_average"]
        > rows[-1]["average"] - rows[0]["average"]
    )
