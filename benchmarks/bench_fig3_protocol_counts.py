"""Figs 3a-3c: number of streaming protocols per publisher."""

from benchmarks.conftest import run_and_save


def test_fig3a_count_distribution(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F3a")
    by_count = {row["protocols"]: row for row in rows}
    # Paper: ~38% single-protocol publishers holding <10% of view-hours;
    # two-protocol publishers carry ~60% of view-hours.
    assert by_count[1]["percent_publishers"] > 25
    assert by_count[1]["percent_view_hours"] < 15
    assert by_count[2]["percent_view_hours"] > 40


def test_fig3b_bucketed(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F3b")
    assert len(rows) == 7
    shares = [row["percent_publishers"] for row in rows]
    # Paper: the 100X-1000X bucket is modal with >35% of publishers.
    assert shares.index(max(shares)) == 3
    assert max(shares) > 25


def test_fig3c_trend(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F3c")
    assert len(rows) == 59
    # Paper: weighted average sits above the plain average throughout,
    # a bit above two by the end.
    for row in rows:
        assert row["weighted_average"] > row["average"]
    assert 1.8 < rows[-1]["weighted_average"] < 3.2
