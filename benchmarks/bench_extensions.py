"""Extension benchmarks: the paper's future-work directions.

* Diversity metrics (new complexity metrics, per the conclusion).
* Integrated-syndication QoE projection and CDN accounting (§6's open
  problems).
* The edge-cache syndication study (§6 notes edge redundancy depends on
  access patterns — here we simulate them).
* Dataset QA audit and the full paper-vs-measured verification report.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_lines, save_rows
from repro.core.diversity import (
    fit_diversity,
    mean_evenness,
    publisher_diversity,
)
from repro.core.integrated import (
    integrated_qoe_projection,
    owner_share_of_cdn,
)
from repro.delivery.edgesim import EdgeSyndicationStudy
from repro.experiments import build_report, fraction_within_band
from repro.synthesis import calibration as cal
from repro.synthesis.catalogues import build_case_catalogue
from repro.entities.ladder import BitrateLadder
from repro.telemetry.quality import audit


def test_diversity_metrics(benchmark, eco_full):
    latest = eco_full.dataset.latest()
    profiles = benchmark.pedantic(
        publisher_diversity, args=(latest,), rounds=1, iterations=1
    )
    fits = fit_diversity(profiles)
    # Both surfaces sub-linear; counts overstate exercised diversity.
    assert fits.surface_index.per_decade_factor < 10
    assert fits.evenness_gap > 0
    save_lines(
        "ext_diversity",
        [
            "Diversity metrics (extension):",
            f"  count-surface factor/decade:   "
            f"{fits.count_surface.per_decade_factor:.2f}x",
            f"  evenness-aware factor/decade:  "
            f"{fits.surface_index.per_decade_factor:.2f}x",
            f"  mean evenness ratio:           "
            f"{mean_evenness(profiles):.2f}",
            f"  VH-weighted evenness ratio:    "
            f"{mean_evenness(profiles, weight_by_view_hours=True):.2f}",
        ],
    )


def test_integrated_qoe_projection(benchmark, eco_full):
    projection = benchmark.pedantic(
        integrated_qoe_projection,
        args=(eco_full.case_study, "S7", "X", "A"),
        kwargs={"sessions": 160},
        rounds=1,
        iterations=1,
    )
    # Integration closes most of the Fig 15 gap for the weak syndicator.
    assert projection.bitrate_gain > 1.8
    save_lines(
        "ext_integration_qoe",
        [
            "S7 under API/app integration (ISP X, CDN A):",
            f"  median bitrate: {projection.before_median_kbps:.0f} -> "
            f"{projection.after_median_kbps:.0f} kbps "
            f"({projection.bitrate_gain:.2f}x)",
            f"  p90 rebuffering: {projection.before_p90_rebuffer:.3f} -> "
            f"{projection.after_p90_rebuffer:.3f} "
            f"({projection.rebuffer_reduction:.0%} lower)",
        ],
    )


def test_integrated_accounting(benchmark, eco_full):
    owner_id = eco_full.case_study.owner_id
    share = benchmark.pedantic(
        owner_share_of_cdn,
        args=(eco_full.dataset.latest(), "A", owner_id),
        rounds=1,
        iterations=1,
    )
    assert 0.0 < share < 1.0
    save_lines(
        "ext_accounting",
        [
            "CDN A delivered-byte attribution (API-integration "
            "accounting):",
            f"  owner's share of CDN A bytes: {share:.1%}",
        ],
    )


def test_edge_cache_syndication(benchmark):
    rng = np.random.default_rng(11)
    catalogue = build_case_catalogue(np.random.default_rng(1))
    ladders = {
        label: BitrateLadder.from_bitrates(cal.CASE_STUDY_LADDERS[label])
        for label in ("O", "S4", "S9")
    }
    study = EdgeSyndicationStudy(
        catalogue=catalogue,
        ladders=ladders,
        owner_id="O",
        cache_capacity_bytes=40e9,
    )
    results = benchmark.pedantic(
        study.compare, args=(rng,), kwargs={"n_sessions": 600},
        rounds=1, iterations=1,
    )
    independent = results["independent"]
    integrated = results["integrated"]
    # Integration consolidates duplicate cache entries -> fewer misses.
    assert integrated.hit_ratio > independent.hit_ratio
    save_lines(
        "ext_edge_cache",
        [
            "Edge-cache syndication study (cache-level Fig 18 analogue):",
            f"  independent: hit ratio {independent.hit_ratio:.1%}, "
            f"origin egress {independent.origin_gigabytes:.1f} GB",
            f"  integrated:  hit ratio {integrated.hit_ratio:.1%}, "
            f"origin egress {integrated.origin_gigabytes:.1f} GB",
        ],
    )


def test_dataset_quality_audit(benchmark, eco_full):
    report = benchmark.pedantic(
        audit, args=(eco_full.dataset,), rounds=1, iterations=1
    )
    assert report.ok
    assert report.classifiable_url_fraction == 1.0
    save_lines("ext_quality", report.summary().splitlines())


def test_verification_report(benchmark, eco_full):
    comparisons = benchmark.pedantic(
        build_report, args=(eco_full,), rounds=1, iterations=1
    )
    within = fraction_within_band(comparisons)
    assert within > 0.85
    save_rows(
        "ext_verification",
        [c.row() for c in comparisons],
        header=(
            f"Paper-vs-measured verification: {within:.0%} of "
            f"{len(comparisons)} comparisons within band"
        ),
    )
