"""Fig 8: CDF of individual view duration per platform."""

from benchmarks.conftest import run_and_save, save_lines
from repro.constants import Platform
from repro.core.durations import long_view_fractions


def test_fig8_duration_cdfs(benchmark, eco_full):
    rows = run_and_save(benchmark, eco_full, "F8")
    # CDFs are non-decreasing in the threshold per platform.
    by_platform = {}
    for row in rows:
        by_platform.setdefault(row["platform"], []).append(row["cdf"])
    for values in by_platform.values():
        assert values == sorted(values)


def test_fig8_long_view_contrast(benchmark, eco_full):
    fractions = benchmark.pedantic(
        long_view_fractions,
        args=(eco_full.dataset.latest(),),
        kwargs={"threshold_hours": 0.2},
        rounds=1,
        iterations=1,
    )
    # Paper: ~24% of mobile/browser views exceed 0.2 h; >60% of set-top
    # views do.
    assert fractions[Platform.MOBILE] < 0.40
    assert fractions[Platform.BROWSER] < 0.40
    assert fractions[Platform.SET_TOP] > 0.45
    assert fractions[Platform.SET_TOP] > 2 * fractions[Platform.MOBILE]
    save_lines(
        "F8_long_views",
        ["P[view > 0.2h] (paper: mobile/browser ~0.24, set-top >0.60):"]
        + [
            f"  {platform.display_name}: {fraction:.2f}"
            for platform, fraction in sorted(
                fractions.items(), key=lambda kv: kv[0].value
            )
        ],
    )
